package statesync

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/crdt"
	"repro/internal/httpapp"
	"repro/internal/obs"
	"repro/internal/script"
	"repro/internal/sqldb"
	"repro/internal/vfs"
)

// Binding connects a live service instance to its replicated state —
// the role of the CRDT templates the paper's transformation weaves into
// the identified statements. Outbound: committed SQL mutations, file
// writes, and global-variable changes are mirrored into the CRDT
// components. Inbound: remote changes are pushed into the running
// database, filesystem, and interpreter (with hooks muted so inbound
// state is not echoed back out).
type Binding struct {
	app   *httpapp.App
	state *ReplicaState
	units analysis.StateUnits

	trackedTables map[string]bool
	trackedFiles  bool
	lastGlobals   map[string]any

	// errMu guards the outbound-mirror failure record. The mutation
	// hooks run synchronously under the app's db/fs locks but may fire
	// from both the invocation path and test harnesses, so the record
	// keeps its own lock.
	errMu       sync.Mutex
	applyErrors int64
	firstErr    error
	// applyErrCounter mirrors failures into an observability registry
	// (nil-safe no-op until SetObs).
	applyErrCounter *obs.Counter
}

// SetObs mirrors the binding's outbound mutation-apply failures into
// the registry as the "statesync.bind.apply_errors.<node>" counter (see
// OBSERVABILITY.md). A nil Obs disables mirroring.
func (b *Binding) SetObs(o *obs.Obs, node string) {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	b.applyErrCounter = o.Counter("statesync.bind.apply_errors." + node)
}

// noteApplyErr records one failed outbound mirror operation: the first
// error is kept verbatim (later ones are usually the same root cause),
// and every failure bumps the count and the registry counter. A replica
// whose app DB diverged from its CRDT state is no longer silent.
func (b *Binding) noteApplyErr(err error) {
	if err == nil {
		return
	}
	b.errMu.Lock()
	if b.firstErr == nil {
		b.firstErr = err
	}
	b.applyErrors++
	c := b.applyErrCounter
	b.errMu.Unlock()
	c.Add(1)
}

// ApplyErrors reports how many outbound mutation mirrors have failed
// since Bind, along with the first failure (nil when none). Mutations
// that fail to mirror are lost to the CRDT components — a nonzero count
// means this replica's app state may have diverged from what it
// replicates.
func (b *Binding) ApplyErrors() (int64, error) {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.applyErrors, b.firstErr
}

// Bind wires the app to the replicated state, seeding the CRDT
// components from the app's current contents for the tracked units.
// Use it on the cloud master, whose app holds the authoritative state.
func Bind(app *httpapp.App, state *ReplicaState, units analysis.StateUnits) (*Binding, error) {
	return bind(app, state, units, true)
}

// BindReplica wires an edge replica to state forked from the cloud
// snapshot: instead of seeding the CRDT from the (empty) replica app, it
// pushes the snapshot state into the app — the paper's "each edge node
// initializes its CRDT data structure with a passed state snapshot".
func BindReplica(app *httpapp.App, state *ReplicaState, units analysis.StateUnits) (*Binding, error) {
	return bind(app, state, units, false)
}

func bind(app *httpapp.App, state *ReplicaState, units analysis.StateUnits, seed bool) (*Binding, error) {
	b := &Binding{
		app:           app,
		state:         state,
		units:         units,
		trackedTables: map[string]bool{},
		lastGlobals:   map[string]any{},
	}
	for _, t := range units.Tables {
		b.trackedTables[t] = true
	}
	b.trackedFiles = len(units.Files) > 0 || len(units.FileStmts) > 0

	app.DB().OnMutation(func(m sqldb.Mutation) {
		if !b.trackedTables[m.Table] {
			return
		}
		// Mirror the committed row change into CRDT-Table. A failure at
		// any step loses the mutation for replication, so it must be
		// recorded — a silently dropped mirror diverges the replica from
		// its app DB with zero signal.
		if err := b.state.Tables.EnsureTable(m.Table); err != nil {
			b.noteApplyErr(fmt.Errorf("statesync: bind: ensure table %q: %w", m.Table, err))
			return
		}
		switch m.Kind {
		case sqldb.MutDelete:
			if err := b.state.Tables.DeleteRow(m.Table, m.Key); err != nil {
				b.noteApplyErr(fmt.Errorf("statesync: bind: delete %s/%s: %w", m.Table, m.Key, err))
			}
		default:
			if err := b.state.Tables.UpsertRow(m.Table, m.Key, normalizeCols(m.Cols)); err != nil {
				b.noteApplyErr(fmt.Errorf("statesync: bind: upsert %s/%s: %w", m.Table, m.Key, err))
			}
		}
	})
	app.FS().OnMutation(func(a vfs.Access) {
		if !b.trackedFiles {
			return
		}
		switch a.Kind {
		case vfs.AccessWrite:
			// a.Content carries the written bytes; the hook must not
			// call back into the locked filesystem.
			if err := b.state.Files.Write(a.Path, a.Content); err != nil {
				b.noteApplyErr(fmt.Errorf("statesync: bind: file write %q: %w", a.Path, err))
			}
		case vfs.AccessRemove:
			if err := b.state.Files.Remove(a.Path); err != nil {
				b.noteApplyErr(fmt.Errorf("statesync: bind: file remove %q: %w", a.Path, err))
			}
		}
	})
	if seed {
		// Seed: current table rows, files, and globals.
		if err := b.seed(); err != nil {
			return nil, err
		}
		return b, nil
	}
	// Replica path: load the snapshot state into the app.
	if err := b.PushIntoApp(); err != nil {
		return nil, err
	}
	return b, nil
}

// normalizeCols converts sqldb values to CRDT scalars.
func normalizeCols(cols map[string]any) map[string]any {
	out := make(map[string]any, len(cols))
	for k, v := range cols {
		if i, ok := v.(int64); ok {
			out[k] = float64(i)
			continue
		}
		out[k] = v
	}
	return out
}

func (b *Binding) seed() error {
	dump := b.app.DB().Dump()
	names := make([]string, 0, len(dump))
	for name := range dump {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !b.trackedTables[name] {
			continue
		}
		if err := b.state.Tables.EnsureTable(name); err != nil {
			return err
		}
	}
	// Replay current rows through SQL SELECT to get keys: use the dump
	// plus key recovery via a full SELECT per table.
	for _, name := range names {
		if !b.trackedTables[name] {
			continue
		}
		rows, keys, err := tableRows(b.app.DB(), name)
		if err != nil {
			return err
		}
		for i, row := range rows {
			if err := b.state.Tables.UpsertRow(name, keys[i], normalizeCols(row)); err != nil {
				return err
			}
		}
	}
	if b.trackedFiles {
		for _, p := range b.app.FS().List("") {
			content, err := b.app.FS().Read(p)
			if err != nil {
				continue
			}
			if err := b.state.Files.Write(p, content); err != nil {
				return err
			}
		}
	}
	return b.MirrorGlobals()
}

// tableRows returns a table's rows along with their primary keys.
func tableRows(db *sqldb.DB, table string) ([]map[string]any, []string, error) {
	res, err := db.Exec("SELECT * FROM " + table)
	if err != nil {
		return nil, nil, err
	}
	keys := make([]string, len(res.Rows))
	rows := make([]map[string]any, len(res.Rows))
	pk := primaryKeyCol(res.Cols, res.Rows)
	for i, r := range res.Rows {
		rows[i] = r
		if pk != "" {
			keys[i] = fmt.Sprint(r[pk])
		} else {
			keys[i] = fmt.Sprintf("_row%d", i)
		}
	}
	return rows, keys, nil
}

// primaryKeyCol guesses the key column: "id" if present, else the first
// column.
func primaryKeyCol(cols []string, rows []sqldb.Row) string {
	for _, c := range cols {
		if strings.EqualFold(c, "id") {
			return c
		}
	}
	if len(cols) > 0 {
		return cols[0]
	}
	_ = rows
	return ""
}

// MirrorGlobals copies changed tracked globals into CRDT-JSON. The
// replica runtime calls it after every service invocation — the analog
// of the generated set-accessor instrumentation.
func (b *Binding) MirrorGlobals() error {
	for _, name := range b.units.GlobalsToSync() {
		cur, ok := b.app.Interp().GetGlobal(name)
		if !ok {
			continue
		}
		if prev, seen := b.lastGlobals[name]; seen && script.Equal(prev, cur) {
			continue
		}
		b.lastGlobals[name] = script.DeepCopy(cur)
		if err := putGlobal(b.state, name, cur); err != nil {
			return err
		}
	}
	return nil
}

func putGlobal(state *ReplicaState, name string, v any) error {
	return state.JSON.PutGo("root", "g:"+name, goValue(v))
}

// ApplyRemote integrates a delta and pushes the resulting state into the
// running app, with mutation hooks muted.
func (b *Binding) ApplyRemote(d Delta) error {
	_, err := b.ApplyRemoteCount(d)
	return err
}

// ApplyRemoteCount is ApplyRemote reporting how many changes the CRDT
// layer actually integrated (duplicates are ignored and not counted).
func (b *Binding) ApplyRemoteCount(d Delta) (int, error) {
	n, err := b.state.ApplyCount(d)
	if err != nil {
		return n, err
	}
	return n, b.PushIntoApp()
}

// PushIntoApp materializes the CRDT state into the live database,
// filesystem, and interpreter globals.
func (b *Binding) PushIntoApp() error {
	db := b.app.DB()
	db.SetMuted(true)
	defer db.SetMuted(false)
	fs := b.app.FS()
	fs.SetMuted(true)
	defer fs.SetMuted(false)

	// Tables: rebuild tracked tables from CRDT rows.
	for _, name := range b.state.Tables.TableNames() {
		if !b.trackedTables[name] {
			continue
		}
		if _, err := db.Exec("CREATE TABLE IF NOT EXISTS " + name + " (id INT PRIMARY KEY)"); err != nil {
			return err
		}
		if _, err := db.Exec("DELETE FROM " + name); err != nil {
			return err
		}
		for _, key := range b.state.Tables.RowKeys(name) {
			row, ok := b.state.Tables.Row(name, key)
			if !ok {
				continue
			}
			if err := insertRow(db, name, row); err != nil {
				return err
			}
		}
	}
	// Files.
	if b.trackedFiles {
		for _, p := range b.state.Files.Paths() {
			content, ok := b.state.Files.Read(p)
			if !ok {
				continue
			}
			if cur, err := fs.Read(p); err == nil && string(cur) == string(content) {
				continue
			}
			if err := fs.Write(p, content); err != nil {
				return err
			}
		}
	}
	// Globals.
	for _, name := range b.units.GlobalsToSync() {
		v, ok := b.state.JSON.MapGet("root", "g:"+name)
		if !ok {
			continue
		}
		var sv any
		if v.Kind == crdt.ValObj { // materialize the nested object
			m, err := b.state.JSON.Materialize(v.Obj)
			if err != nil {
				return err
			}
			sv = scriptValue(m)
		} else {
			sv = scriptValue(v.ToGo())
		}
		b.app.Interp().SetGlobal(name, sv)
		b.lastGlobals[name] = script.DeepCopy(sv)
	}
	return nil
}

func insertRow(db *sqldb.DB, table string, row map[string]any) error {
	cols := make([]string, 0, len(row))
	for c := range row {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	placeholders := make([]string, len(cols))
	args := make([]any, len(cols))
	for i, c := range cols {
		placeholders[i] = "?"
		args[i] = row[c]
	}
	q := "INSERT INTO " + table + " (" + strings.Join(cols, ", ") + ") VALUES (" + strings.Join(placeholders, ", ") + ")"
	_, err := db.Exec(q, args...)
	return err
}
