package placement

import (
	"reflect"
	"testing"
)

func mustController(t *testing.T, th Thresholds, rules string) *Controller {
	t.Helper()
	c, err := New(th, rules)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func th() Thresholds { return Thresholds{HotRequests: 10, ColdRequests: 3} }

func TestParseRulesDefaultProgram(t *testing.T) {
	p, err := ParseRules(DefaultRulesText)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 8 {
		t.Fatalf("default program has %d rules, want 8", len(p.Rules))
	}
	if len(p.Facts) != 0 {
		t.Fatalf("default program asserts %d facts, want 0", len(p.Facts))
	}
}

func TestParseRulesSyntax(t *testing.T) {
	p, err := ParseRules(`
# facts with quoted constants survive spaces and commas
colocate("GET /a,b", "POST /c").
candidate(S, E) :- load(S, hot), edge(E).
keep(S,E) :- assigned(S,E),
	load(S, warm).
retract(S, E) :- assigned(S, E), load(S, cold).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 || len(p.Facts) != 1 {
		t.Fatalf("rules=%d facts=%d, want 3/1", len(p.Rules), len(p.Facts))
	}
	if f := p.Facts[0]; f.Pred != "colocate" || f.Args[0] != "GET /a,b" || f.Args[1] != "POST /c" {
		t.Fatalf("fact = %+v", f)
	}

	for _, bad := range []string{
		"",                             // no rules
		"colocate(a, b).",              // facts only
		"p(X) :- .",                    // empty body
		"p(X).",                        // variable in fact
		"p :- q(X).",                   // head not an atom
		`p(X) :- q("unterminated).`,    // bad quote
		"p(X) :- q(a b).",              // unquoted constant with space
		"keep(S, E) :- assigned(S, E)", // missing terminator is fine...
		"keep() :- assigned(S, E).",    // empty args
	} {
		if bad == "keep(S, E) :- assigned(S, E)" {
			// A missing final '.' still parses (the last clause is
			// implicit); assert it does NOT error.
			if _, err := ParseRules(bad); err != nil {
				t.Fatalf("trailing clause without '.' rejected: %v", err)
			}
			continue
		}
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestDecidePromotesHotService(t *testing.T) {
	c := mustController(t, th(), "")
	d, err := c.Decide(Input{
		Services: []Service{{Name: "GET /books", Requests: 50}},
		Edges:    []Edge{{Name: "e1", Connected: true}, {Name: "e2", Connected: true}},
		Assigned: map[string][]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Move{{Service: "GET /books", Edge: "e1"}, {Service: "GET /books", Edge: "e2"}}
	if !reflect.DeepEqual(d.Promote, want) {
		t.Fatalf("Promote = %v, want %v", d.Promote, want)
	}
	if len(d.Retract) != 0 {
		t.Fatalf("Retract = %v, want none", d.Retract)
	}
	if !reflect.DeepEqual(d.Next["e1"], []string{"GET /books"}) {
		t.Fatalf("Next[e1] = %v", d.Next["e1"])
	}
	if d.Stats.Rounds == 0 || d.Facts == 0 {
		t.Fatalf("stats empty: %+v facts=%d", d.Stats, d.Facts)
	}
}

func TestDecideRetractsColdService(t *testing.T) {
	c := mustController(t, th(), "")
	d, err := c.Decide(Input{
		Services: []Service{{Name: "s", Requests: 0}},
		Edges:    []Edge{{Name: "e1", Connected: true}},
		Assigned: map[string][]string{"e1": {"s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []Move{{Service: "s", Edge: "e1"}}; !reflect.DeepEqual(d.Retract, want) {
		t.Fatalf("Retract = %v, want %v", d.Retract, want)
	}
	if len(d.Next["e1"]) != 0 {
		t.Fatalf("Next[e1] = %v, want empty", d.Next["e1"])
	}
}

// TestDecideHysteresis pins the warm band: a service that cooled from
// hot to warm keeps its assignment but gains no new edges, so small
// oscillations around the hot threshold cannot flap placement.
func TestDecideHysteresis(t *testing.T) {
	c := mustController(t, th(), "")
	d, err := c.Decide(Input{
		Services: []Service{{Name: "s", Requests: 5}}, // warm: 3 ≤ 5 < 10
		Edges:    []Edge{{Name: "e1", Connected: true}, {Name: "e2", Connected: true}},
		Assigned: map[string][]string{"e1": {"s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Promote) != 0 || len(d.Retract) != 0 {
		t.Fatalf("warm service moved: promote=%v retract=%v", d.Promote, d.Retract)
	}
	if !reflect.DeepEqual(d.Next["e1"], []string{"s"}) || len(d.Next["e2"]) != 0 {
		t.Fatalf("Next = %v, want s pinned to e1 only", d.Next)
	}

	// The same warm service with no assignment stays unplaced — warm
	// alone never promotes.
	d2, err := c.Decide(Input{
		Services: []Service{{Name: "s", Requests: 5}},
		Edges:    []Edge{{Name: "e1", Connected: true}},
		Assigned: map[string][]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Promote) != 0 {
		t.Fatalf("warm unassigned service promoted: %v", d2.Promote)
	}
}

func TestDecideCapacityCap(t *testing.T) {
	c := mustController(t, th(), "")
	d, err := c.Decide(Input{
		Services: []Service{
			{Name: "a", Requests: 100},
			{Name: "b", Requests: 100},
			{Name: "c", Requests: 100},
		},
		Edges:    []Edge{{Name: "e1", Connected: true, Capacity: 2}},
		Assigned: map[string][]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Next["e1"]) != 2 {
		t.Fatalf("capacity 2 edge got %v", d.Next["e1"])
	}
	// Deterministic admission: sorted candidate order admits a, b.
	if !reflect.DeepEqual(d.Next["e1"], []string{"a", "b"}) {
		t.Fatalf("admission order = %v, want [a b]", d.Next["e1"])
	}

	// An edge already at capacity emits capacity(E, full): no candidates
	// at all, and existing assignments stay.
	d2, err := c.Decide(Input{
		Services: []Service{{Name: "a", Requests: 100}, {Name: "b", Requests: 100}, {Name: "c", Requests: 100}},
		Edges:    []Edge{{Name: "e1", Connected: true, Capacity: 2}},
		Assigned: map[string][]string{"e1": {"a", "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Promote) != 0 || !reflect.DeepEqual(d2.Next["e1"], []string{"a", "b"}) {
		t.Fatalf("full edge changed: promote=%v next=%v", d2.Promote, d2.Next["e1"])
	}
}

func TestDecideDeadAndOverBudgetEdgesShed(t *testing.T) {
	c := mustController(t, th(), "")
	d, err := c.Decide(Input{
		Services: []Service{{Name: "s", Requests: 100}},
		Edges: []Edge{
			{Name: "down", Connected: false},
			{Name: "hotbox", Connected: true, EnergyOver: true},
			{Name: "ok", Connected: true},
		},
		Assigned: map[string][]string{"down": {"s"}, "hotbox": {"s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRetract := []Move{{Service: "s", Edge: "down"}, {Service: "s", Edge: "hotbox"}}
	if !reflect.DeepEqual(d.Retract, wantRetract) {
		t.Fatalf("Retract = %v, want %v", d.Retract, wantRetract)
	}
	// The hot service still lands on the healthy edge.
	if want := []Move{{Service: "s", Edge: "ok"}}; !reflect.DeepEqual(d.Promote, want) {
		t.Fatalf("Promote = %v, want %v", d.Promote, want)
	}
}

func TestDecideColocation(t *testing.T) {
	c := mustController(t, th(), "")
	d, err := c.Decide(Input{
		Services: []Service{
			{Name: "api", Requests: 100},
			{Name: "helper", Requests: 0}, // cold on its own
		},
		Edges:    []Edge{{Name: "e1", Connected: true}},
		Assigned: map[string][]string{},
		Colocate: [][2]string{{"api", "helper"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Next["e1"], []string{"api", "helper"}) {
		t.Fatalf("colocation ignored: Next[e1] = %v", d.Next["e1"])
	}
}

// TestDecideDeterministic runs the same mixed input repeatedly and
// requires identical decisions — placement must not depend on map
// iteration order.
func TestDecideDeterministic(t *testing.T) {
	c := mustController(t, th(), "")
	in := Input{
		Services: []Service{
			{Name: "a", Requests: 50}, {Name: "b", Requests: 50},
			{Name: "c", Requests: 5}, {Name: "d", Requests: 0},
		},
		Edges: []Edge{
			{Name: "e1", Connected: true, Capacity: 2},
			{Name: "e2", Connected: true, Capacity: 2},
			{Name: "e3", Connected: false},
		},
		Assigned: map[string][]string{"e1": {"c", "d"}, "e3": {"a"}},
	}
	first, err := c.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := c.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		again.Stats, again.Elapsed = first.Stats, first.Elapsed
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\nfirst: %+v\nagain: %+v", i, first, again)
		}
	}
}

// TestDecideCustomProgram swaps the policy: pin everything everywhere
// regardless of load.
func TestDecideCustomProgram(t *testing.T) {
	c := mustController(t, th(), `
candidate(S, E) :- service(S), edge(E), link(E, up).
keep(S, E) :- assigned(S, E), link(E, up).
`)
	d, err := c.Decide(Input{
		Services: []Service{{Name: "s", Requests: 0}},
		Edges:    []Edge{{Name: "e1", Connected: true}},
		Assigned: map[string][]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []Move{{Service: "s", Edge: "e1"}}; !reflect.DeepEqual(d.Promote, want) {
		t.Fatalf("custom program Promote = %v, want %v", d.Promote, want)
	}
}

// TestDecideShardFacts pins the fabric-aware fact schema: edgegroup,
// shard, and shardload are asserted from Input and derivable by custom
// rule programs — here, hot services land only on edges whose fabric
// group is under replication pressure ("low"), steering new placements
// away from groups already saturating their relay uplink.
func TestDecideShardFacts(t *testing.T) {
	c := mustController(t, Thresholds{HotRequests: 10, ColdRequests: 3, DeltaBytesHigh: 1000}, `
candidate(S, E) :- load(S, hot), edgegroup(E, G), shardload(G, low), shard("app", G).
keep(S, E) :- assigned(S, E).
`)
	d, err := c.Decide(Input{
		Services: []Service{{Name: "svc", Requests: 50}},
		Edges: []Edge{
			{Name: "e1", Connected: true},
			{Name: "e2", Connected: true},
			{Name: "e3", Connected: true},
		},
		Assigned: map[string][]string{},
		EdgeGroups: map[string]string{
			"e1": "group-1", "e2": "group-1", "e3": "group-2",
		},
		ShardOwners: map[string][]string{"app": {"group-1", "group-2"}},
		GroupBytes:  map[string]int64{"group-1": 5000, "group-2": 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	// group-1 is over DeltaBytesHigh (shardload high), so only the
	// group-2 edge qualifies.
	if want := []Move{{Service: "svc", Edge: "e3"}}; !reflect.DeepEqual(d.Promote, want) {
		t.Fatalf("Promote = %v, want %v", d.Promote, want)
	}

	// With group-2 also hot, no edge qualifies at all.
	d, err = c.Decide(Input{
		Services:    []Service{{Name: "svc", Requests: 50}},
		Edges:       []Edge{{Name: "e3", Connected: true}},
		Assigned:    map[string][]string{},
		EdgeGroups:  map[string]string{"e3": "group-2"},
		ShardOwners: map[string][]string{"app": {"group-2"}},
		GroupBytes:  map[string]int64{"group-2": 9000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Promote) != 0 {
		t.Fatalf("Promote = %v, want none (all groups high)", d.Promote)
	}
}

func TestBandThresholds(t *testing.T) {
	c := mustController(t, Thresholds{HotRequests: 10, ColdRequests: 3, HotLatencyMS: 200}, "")
	cases := []struct {
		s    Service
		want string
	}{
		{Service{Name: "x", Requests: 10}, LoadHot},
		{Service{Name: "x", Requests: 9}, LoadWarm},
		{Service{Name: "x", Requests: 3}, LoadWarm},
		{Service{Name: "x", Requests: 2}, LoadCold},
		{Service{Name: "x", Requests: 0, P95LatencyMS: 250}, LoadHot}, // latency pressure
	}
	for _, tc := range cases {
		if got := c.Band(tc.s); got != tc.want {
			t.Fatalf("Band(%+v) = %s, want %s", tc.s, got, tc.want)
		}
	}
}
