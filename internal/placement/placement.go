// Package placement is the declarative placement engine (ROADMAP item
// 2): each control round it snapshots live observability facts — per-
// service demand, per-edge link/capacity/energy state, the previous
// round's assignment — into Datalog relations, runs a rule program
// through the internal/datalog engine, and derives which extracted
// services run on which edges. The previous assignment re-enters the
// fact base each round, so hysteresis (don't flap near thresholds) is
// expressed in the rules themselves rather than in controller code.
//
// The engine is positive-only (no negation), so continuous quantities
// are discretized into bands before they become facts: request volume
// to hot/warm/cold, link state to up/down, energy to ok/over, capacity
// to free/full, sync traffic to high/low. The rule program derives
// three relations the controller combines in code:
//
//	candidate(S, E)  service S may be promoted to edge E
//	keep(S, E)       assigned service S stays on edge E
//	retract(S, E)    assigned service S drains away from edge E
//
// The next assignment is keep plus capacity-capped candidates; anything
// assigned that did not survive is retracted.
package placement

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/datalog"
)

// Thresholds discretize raw observations into the fact bands the rules
// see.
type Thresholds struct {
	// HotRequests is the per-window request count at or above which a
	// service is load(S, hot).
	HotRequests int64
	// ColdRequests: an assigned service strictly below this count is
	// load(S, cold). The gap between ColdRequests and HotRequests is the
	// warm band — the hysteresis zone where assignments hold steady.
	ColdRequests int64
	// HotLatencyMS, when positive, also marks a service hot once its p95
	// latency reaches it — latency pressure promotes even at moderate
	// volume.
	HotLatencyMS float64
	// DeltaBytesHigh, when positive, marks an edge syncload(E, high)
	// once its per-window replication traffic reaches it. The default
	// policy does not use the relation; custom programs can.
	DeltaBytesHigh int64
}

// DefaultThresholds is a starting point for the evaluation topology.
func DefaultThresholds() Thresholds {
	return Thresholds{HotRequests: 20, ColdRequests: 5, HotLatencyMS: 0, DeltaBytesHigh: 1 << 20}
}

// Service is one replicated service's demand this window.
type Service struct {
	Name string
	// Requests is the number of requests routed to the service this
	// window (served at an edge or forwarded — demand, not supply).
	Requests int64
	// P95LatencyMS is the service's p95 latency so far.
	P95LatencyMS float64
}

// Edge is one edge node's state this window.
type Edge struct {
	Name string
	// Connected reports the sync link is up (always true under the
	// virtual transport; the TCP supervisor's state otherwise).
	Connected bool
	// Capacity is the maximum services this edge may host (≤ 0 means
	// unlimited).
	Capacity int
	// EnergyOver reports the edge exceeded its energy budget this
	// window.
	EnergyOver bool
	// DeltaBytes is the replication traffic attributed to this edge this
	// window.
	DeltaBytes int64
}

// Input is one round's fact snapshot.
type Input struct {
	Services []Service
	Edges    []Edge
	// Assigned is the previous round's assignment: edge name → service
	// names. It becomes the assigned(S, E) relation — the hysteresis
	// memory.
	Assigned map[string][]string
	// Colocate lists service pairs that should land together; each pair
	// is asserted symmetrically.
	Colocate [][2]string
	// Shard topology facts (all optional; present when the deployment
	// runs the sharded sync fabric). EdgeGroups maps edge name → fabric
	// group, asserted as edgegroup(E, G). ShardOwners maps store name →
	// owner groups, asserted as shard(S, G). GroupBytes maps group →
	// replication bytes this window, banded against DeltaBytesHigh into
	// shardload(G, low|high). Custom rule programs use these to steer
	// placement toward (or away from) busy shard groups.
	EdgeGroups  map[string]string
	ShardOwners map[string][]string
	GroupBytes  map[string]int64
}

// Move is one assignment change.
type Move struct {
	Service string
	Edge    string
}

// Decision is one control round's outcome.
type Decision struct {
	// Promote lists services newly enabled at an edge; Retract lists
	// services to drain. Both are sorted (service, then edge).
	Promote []Move
	Retract []Move
	// Next is the derived assignment: edge name → sorted service names.
	// Every edge in the input appears, possibly with no services.
	Next map[string][]string
	// Stats is the Datalog engine's fixpoint accounting for the round;
	// Facts is the ground-fact count loaded; Elapsed is the wall-clock
	// decision time (fact load + fixpoint + extraction).
	Stats   datalog.RunStats
	Facts   int
	Elapsed time.Duration
}

// Load bands.
const (
	LoadHot  = "hot"
	LoadWarm = "warm"
	LoadCold = "cold"
)

// Controller derives placement decisions from observation snapshots. It
// is stateless between rounds — the hysteresis memory travels in
// Input.Assigned — so a fresh controller resumes an existing deployment
// without a warmup.
type Controller struct {
	thresholds Thresholds
	program    *Program
}

// New returns a controller running the given rule program text; empty
// text selects DefaultRulesText.
func New(th Thresholds, rulesText string) (*Controller, error) {
	if rulesText == "" {
		rulesText = DefaultRulesText
	}
	prog, err := ParseRules(rulesText)
	if err != nil {
		return nil, err
	}
	return &Controller{thresholds: th, program: prog}, nil
}

// Band returns the load band for a service under the controller's
// thresholds.
func (c *Controller) Band(s Service) string {
	th := c.thresholds
	if s.Requests >= th.HotRequests || (th.HotLatencyMS > 0 && s.P95LatencyMS >= th.HotLatencyMS) {
		return LoadHot
	}
	if s.Requests < th.ColdRequests {
		return LoadCold
	}
	return LoadWarm
}

// Decide runs one control round: facts in, rules to fixpoint, and the
// derived relations combined into the next assignment.
func (c *Controller) Decide(in Input) (*Decision, error) {
	start := time.Now()
	db := datalog.NewDB()
	if err := c.program.Load(db); err != nil {
		return nil, err
	}
	facts, err := c.loadFacts(db, in)
	if err != nil {
		return nil, err
	}
	if err := db.Run(); err != nil {
		return nil, err
	}

	capacity := make(map[string]int, len(in.Edges))
	next := make(map[string]map[string]bool, len(in.Edges))
	for _, e := range in.Edges {
		capacity[e.Name] = e.Capacity
		next[e.Name] = map[string]bool{}
	}

	// Retract wins over keep if a custom program derives both — dropping
	// a replica is always safe (the cloud still serves it), keeping one
	// the rules wanted gone is not.
	retracted := map[Move]bool{}
	for _, row := range db.Query(datalog.NewAtom("retract", datalog.V("S"), datalog.V("E"))) {
		retracted[Move{Service: row["S"], Edge: row["E"]}] = true
	}
	for _, row := range db.Query(datalog.NewAtom("keep", datalog.V("S"), datalog.V("E"))) {
		mv := Move{Service: row["S"], Edge: row["E"]}
		if set, ok := next[mv.Edge]; ok && !retracted[mv] {
			set[mv.Service] = true
		}
	}

	// Admit candidates into remaining capacity. Query order is
	// deterministic (sorted), so admission under a full window is too.
	var promote []Move
	for _, row := range db.Query(datalog.NewAtom("candidate", datalog.V("S"), datalog.V("E"))) {
		mv := Move{Service: row["S"], Edge: row["E"]}
		set, ok := next[mv.Edge]
		if !ok || set[mv.Service] || retracted[mv] {
			continue
		}
		if cap := capacity[mv.Edge]; cap > 0 && len(set) >= cap {
			continue
		}
		set[mv.Service] = true
		if !assignedHas(in.Assigned, mv) {
			promote = append(promote, mv)
		}
	}

	// Anything previously assigned that did not survive drains — whether
	// the rules said retract explicitly or simply stopped deriving keep
	// (e.g. the edge vanished from the input).
	var retract []Move
	for edge, svcs := range in.Assigned {
		for _, s := range svcs {
			set, ok := next[edge]
			if !ok || !set[s] {
				retract = append(retract, Move{Service: s, Edge: edge})
			}
		}
	}

	d := &Decision{
		Promote: sortMoves(promote),
		Retract: sortMoves(retract),
		Next:    make(map[string][]string, len(next)),
		Stats:   db.Stats(),
		Facts:   facts,
	}
	for edge, set := range next {
		svcs := make([]string, 0, len(set))
		for s := range set {
			svcs = append(svcs, s)
		}
		sort.Strings(svcs)
		d.Next[edge] = svcs
	}
	d.Elapsed = time.Since(start)
	return d, nil
}

// loadFacts asserts the snapshot into the database, returning the fact
// count.
func (c *Controller) loadFacts(db *datalog.DB, in Input) (int, error) {
	n := 0
	add := func(pred string, args ...string) error {
		if _, err := db.AddFact(pred, args...); err != nil {
			return fmt.Errorf("placement: fact %s%v: %w", pred, args, err)
		}
		n++
		return nil
	}
	for _, s := range in.Services {
		if err := add("service", s.Name); err != nil {
			return n, err
		}
		if err := add("load", s.Name, c.Band(s)); err != nil {
			return n, err
		}
	}
	for _, e := range in.Edges {
		link := "down"
		if e.Connected {
			link = "up"
		}
		en := "ok"
		if e.EnergyOver {
			en = "over"
		}
		cap := "free"
		if e.Capacity > 0 && len(in.Assigned[e.Name]) >= e.Capacity {
			cap = "full"
		}
		sl := "low"
		if c.thresholds.DeltaBytesHigh > 0 && e.DeltaBytes >= c.thresholds.DeltaBytesHigh {
			sl = "high"
		}
		for _, f := range [][]string{
			{"edge", e.Name}, {"link", e.Name, link}, {"energy", e.Name, en},
			{"capacity", e.Name, cap}, {"syncload", e.Name, sl},
		} {
			if err := add(f[0], f[1:]...); err != nil {
				return n, err
			}
		}
	}
	for edge, svcs := range in.Assigned {
		for _, s := range svcs {
			if err := add("assigned", s, edge); err != nil {
				return n, err
			}
		}
	}
	for _, e := range in.Edges {
		if g := in.EdgeGroups[e.Name]; g != "" {
			if err := add("edgegroup", e.Name, g); err != nil {
				return n, err
			}
		}
	}
	for store, groups := range in.ShardOwners {
		for _, g := range groups {
			if err := add("shard", store, g); err != nil {
				return n, err
			}
		}
	}
	for group, bytes := range in.GroupBytes {
		band := "low"
		if c.thresholds.DeltaBytesHigh > 0 && bytes >= c.thresholds.DeltaBytesHigh {
			band = "high"
		}
		if err := add("shardload", group, band); err != nil {
			return n, err
		}
	}
	for _, pair := range in.Colocate {
		if err := add("colocate", pair[0], pair[1]); err != nil {
			return n, err
		}
		if err := add("colocate", pair[1], pair[0]); err != nil {
			return n, err
		}
	}
	return n, nil
}

func assignedHas(assigned map[string][]string, mv Move) bool {
	for _, s := range assigned[mv.Edge] {
		if s == mv.Service {
			return true
		}
	}
	return false
}

func sortMoves(ms []Move) []Move {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Service != ms[j].Service {
			return ms[i].Service < ms[j].Service
		}
		return ms[i].Edge < ms[j].Edge
	})
	return ms
}
