package placement

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/datalog"
)

// This file is the placement rule language: a tiny Datalog surface
// syntax so operators can swap the placement policy without recompiling
// (cmd/edgstr -placement-rules). The controller loads the program into
// the engine alongside the fact snapshot each round.
//
// Syntax, one clause per '.'-terminated statement:
//
//	# comment to end of line
//	eligible(E) :- edge(E), link(E, up), energy(E, ok).
//	colocate("GET /a", "GET /b").
//
// Identifiers starting with an uppercase letter are variables;
// everything else (including double-quoted strings, which may contain
// spaces, commas, and parentheses) is a constant. A clause without
// ":-" asserts a ground fact.

// StaticFact is a ground fact asserted by a rule program (e.g. a
// colocation constraint).
type StaticFact struct {
	Pred string
	Args []string
}

// Program is a parsed placement rule program.
type Program struct {
	Rules []datalog.Rule
	Facts []StaticFact
}

// DefaultRulesText is the built-in placement policy (see DESIGN.md §13):
// hot services spread to every eligible edge with free capacity, warm
// services stay where they are (hysteresis), cold services and services
// on dead or energy-over-budget edges retract. Colocated partners follow
// their peers. The engine is positive-only, so the policy derives three
// relations the controller combines in code: candidate (may be
// promoted), keep (stays), retract (drains away).
const DefaultRulesText = `
# An edge may host services while its link is up and it is within its
# energy budget.
eligible(E) :- edge(E), link(E, up), energy(E, ok).

# Hot services are candidates for every eligible edge with a free slot.
candidate(S, E) :- load(S, hot), eligible(E), capacity(E, free).

# Colocation: a candidate pulls its declared partners along.
candidate(S2, E) :- colocate(S1, S2), candidate(S1, E), service(S2).

# Hysteresis: an assigned service survives while hot or warm — only the
# cold band (or a failed edge) evicts it, so load flutter near the hot
# threshold cannot flap the assignment.
keep(S, E) :- assigned(S, E), load(S, hot), eligible(E).
keep(S, E) :- assigned(S, E), load(S, warm), eligible(E).

# Retraction: cold services drain; dead or over-budget edges shed
# everything.
retract(S, E) :- assigned(S, E), load(S, cold).
retract(S, E) :- assigned(S, E), link(E, down).
retract(S, E) :- assigned(S, E), energy(E, over).
`

// ParseRules parses a placement rule program.
func ParseRules(src string) (*Program, error) {
	p := &Program{}
	for i, clause := range splitClauses(src) {
		head, body, err := parseClause(clause)
		if err != nil {
			return nil, fmt.Errorf("placement: clause %d (%q): %w", i+1, compact(clause), err)
		}
		if len(body) == 0 {
			args := make([]string, len(head.Args))
			for j, t := range head.Args {
				if t.IsVar() {
					return nil, fmt.Errorf("placement: clause %d (%q): fact argument %q is a variable", i+1, compact(clause), t.Value())
				}
				args[j] = t.Value()
			}
			p.Facts = append(p.Facts, StaticFact{Pred: head.Pred, Args: args})
			continue
		}
		p.Rules = append(p.Rules, datalog.NewRule(head, body...))
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("placement: program has no rules")
	}
	return p, nil
}

// Load asserts the program's rules and static facts into a database.
func (p *Program) Load(db *datalog.DB) error {
	for _, r := range p.Rules {
		if err := db.AddRule(r); err != nil {
			return err
		}
	}
	for _, f := range p.Facts {
		if _, err := db.AddFact(f.Pred, f.Args...); err != nil {
			return err
		}
	}
	return nil
}

// compact renders a clause on one line for error messages.
func compact(s string) string { return strings.Join(strings.Fields(s), " ") }

// splitClauses cuts the source at '.' terminators outside quotes,
// dropping comments ('#' to end of line) and blank clauses.
func splitClauses(src string) []string {
	var clauses []string
	var cur strings.Builder
	inQuote := false
	inComment := false
	for _, r := range src {
		switch {
		case inComment:
			if r == '\n' {
				inComment = false
				cur.WriteRune('\n')
			}
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case inQuote:
			cur.WriteRune(r)
		case r == '#':
			inComment = true
		case r == '.':
			if s := strings.TrimSpace(cur.String()); s != "" {
				clauses = append(clauses, s)
			}
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		clauses = append(clauses, s)
	}
	return clauses
}

// parseClause parses "head :- body" or a bare fact atom; body is nil for
// facts.
func parseClause(s string) (datalog.Atom, []datalog.Atom, error) {
	headSrc, bodySrc, hasBody := cutOutsideQuotes(s, ":-")
	head, err := parseAtom(headSrc)
	if err != nil {
		return datalog.Atom{}, nil, fmt.Errorf("head: %w", err)
	}
	if !hasBody {
		return head, nil, nil
	}
	var body []datalog.Atom
	for _, atomSrc := range splitTopLevel(bodySrc) {
		a, err := parseAtom(atomSrc)
		if err != nil {
			return datalog.Atom{}, nil, fmt.Errorf("body: %w", err)
		}
		body = append(body, a)
	}
	if len(body) == 0 {
		return datalog.Atom{}, nil, fmt.Errorf("empty body after :-")
	}
	return head, body, nil
}

// cutOutsideQuotes is strings.Cut honoring double quotes.
func cutOutsideQuotes(s, sep string) (string, string, bool) {
	inQuote := false
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i] == '"' {
			inQuote = !inQuote
			continue
		}
		if !inQuote && s[i:i+len(sep)] == sep {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}

// splitTopLevel splits body atoms on commas outside parentheses and
// quotes.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	inQuote := false
	start := 0
	for i, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
		case inQuote:
		case r == '(':
			depth++
		case r == ')':
			depth--
		case r == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseAtom parses "pred(arg, arg, ...)".
func parseAtom(s string) (datalog.Atom, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return datalog.Atom{}, fmt.Errorf("atom %q is not pred(args)", s)
	}
	pred := strings.TrimSpace(s[:open])
	if pred == "" || !isIdent(pred) {
		return datalog.Atom{}, fmt.Errorf("bad predicate name %q", pred)
	}
	inner := s[open+1 : len(s)-1]
	var terms []datalog.Term
	for _, argSrc := range splitTopLevel(inner) {
		t, err := parseTerm(argSrc)
		if err != nil {
			return datalog.Atom{}, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return datalog.Atom{}, fmt.Errorf("atom %q has no arguments", s)
	}
	return datalog.NewAtom(pred, terms...), nil
}

// parseTerm classifies one argument: quoted → constant, leading
// uppercase → variable, otherwise constant.
func parseTerm(s string) (datalog.Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return datalog.Term{}, fmt.Errorf("empty argument")
	}
	if strings.HasPrefix(s, `"`) {
		if len(s) < 2 || !strings.HasSuffix(s, `"`) {
			return datalog.Term{}, fmt.Errorf("unterminated quote in %q", s)
		}
		return datalog.C(s[1 : len(s)-1]), nil
	}
	if !isIdent(s) {
		return datalog.Term{}, fmt.Errorf("bad argument %q (quote constants with spaces or punctuation)", s)
	}
	first := []rune(s)[0]
	if unicode.IsUpper(first) {
		return datalog.V(s), nil
	}
	return datalog.C(s), nil
}

// isIdent accepts letters, digits, underscores, and dashes.
func isIdent(s string) bool {
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
			return false
		}
	}
	return s != ""
}
