package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/httpapp"
	"repro/internal/simclock"
)

func newFleet(t *testing.T, clock *simclock.Clock, n int) (*Balancer, []*Server) {
	t.Helper()
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = NewServer("s", NewNode(clock, RPi4Spec), newWorkApp(t))
	}
	return NewBalancer(LeastConnections, servers...), servers
}

// TestFleetScalerWindowedScaleUpDown drives a load burst through the
// balancer: the windowed volume must grow the serving set, the idle
// tail must drain and park the surplus (with hooks firing), and a
// second burst must power replicas back up.
func TestFleetScalerWindowedScaleUpDown(t *testing.T) {
	clock := simclock.New()
	b, servers := newFleet(t, clock, 4)
	fs, err := NewFleetScaler(clock, b, 5, time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	var parked, unparked int
	fs.OnPark = func(*Server) { parked++ }
	fs.OnUnpark = func(*Server) { unparked++ }
	fs.Start()
	defer fs.Stop()

	burst := func(duration time.Duration, perSecond int) {
		end := clock.Now() + duration
		var fire func()
		fire = func() {
			if clock.Now() >= end {
				return
			}
			for i := 0; i < perSecond; i++ {
				srv, err := b.Pick()
				if err != nil {
					t.Errorf("pick during burst: %v", err)
					return
				}
				srv.Handle(workReq("1000"), func(_ *httpapp.Response, _ time.Duration, err error) {
					if err != nil {
						t.Errorf("request failed: %v", err)
					}
				})
			}
			clock.After(time.Second, fire)
		}
		fire()
	}

	burst(5*time.Second, 20)
	clock.Advance(5 * time.Second)
	if got := b.ActiveCount(); got != 4 {
		t.Fatalf("after 20 req/s burst: %d active replicas, want 4", got)
	}

	// Idle: the window drains to zero and the fleet contracts to one.
	clock.Advance(10 * time.Second)
	if got := b.ActiveCount(); got != 1 {
		t.Fatalf("after idle: %d active replicas, want 1", got)
	}
	if parked != 3 {
		t.Fatalf("OnPark fired %d times, want 3", parked)
	}
	for _, s := range servers[1:] {
		if s.Node.Energy.State() != energy.StateLowPower {
			t.Fatalf("parked node meter in state %v, want low-power", s.Node.Energy.State())
		}
	}

	// Second burst: parked replicas power back up through OnUnpark.
	burst(4*time.Second, 20)
	clock.Advance(4 * time.Second)
	if got := b.ActiveCount(); got < 3 {
		t.Fatalf("after second burst: %d active replicas, want ≥ 3", got)
	}
	if unparked == 0 {
		t.Fatal("OnUnpark never fired on scale-up")
	}
	if fs.Parks() != parked || fs.Unparks() != unparked {
		t.Fatalf("counters disagree with hooks: parks=%d/%d unparks=%d/%d",
			fs.Parks(), parked, fs.Unparks(), unparked)
	}
}

// TestFleetScalerDrainsBeforePark pins the teardown ordering: a surplus
// replica with a request in flight is excluded from routing but stays
// powered until the request completes; only then does it park and fire
// OnPark.
func TestFleetScalerDrainsBeforePark(t *testing.T) {
	clock := simclock.New()
	slow := DeviceSpec{Name: "slow", Cores: 1, OpsPerSec: 1000, Power: energy.RPi3Profile}
	servers := []*Server{
		NewServer("s0", NewNode(clock, slow), newWorkApp(t)),
		NewServer("s1", NewNode(clock, slow), newWorkApp(t)),
	}
	b := NewBalancer(LeastConnections, servers...)
	fs, err := NewFleetScaler(clock, b, 1000, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	var parkedAt time.Duration
	fs.OnPark = func(*Server) { parkedAt = clock.Now() }

	// A 5000-op request occupies s1 for 5 virtual seconds.
	completed := false
	servers[1].Handle(workReq("5000"), func(_ *httpapp.Response, _ time.Duration, err error) {
		if err != nil {
			t.Errorf("request failed: %v", err)
		}
		completed = true
	})
	fs.Adjust() // zero volume -> want 1 -> s1 must drain
	if !b.IsDraining(servers[1]) {
		t.Fatal("surplus replica not draining")
	}
	if !servers[1].Node.Active() {
		t.Fatal("draining replica was powered down with a request in flight")
	}
	if _, err := b.Pick(); err != nil {
		t.Fatalf("no routable server while one is draining: %v", err)
	}
	clock.Advance(time.Second)
	fs.Adjust()
	if fs.Parks() != 0 {
		t.Fatal("parked before the in-flight request completed")
	}
	clock.Advance(5 * time.Second)
	fs.Adjust()
	if !completed {
		t.Fatal("drained request never completed")
	}
	if fs.Parks() != 1 || servers[1].Node.Active() {
		t.Fatal("drained replica did not park after its queue emptied")
	}
	if parkedAt < 5*time.Second {
		t.Fatalf("parked at %v, before the request finished", parkedAt)
	}
	if servers[1].Node.Energy.State() != energy.StateLowPower {
		t.Fatal("parked node not in low-power state")
	}
}

// TestPickWhereEdgeCases covers the balancer's empty and exhausted
// candidate sets under both policies: no servers at all, every server
// draining, every server parked, and a predicate rejecting everything.
func TestPickWhereEdgeCases(t *testing.T) {
	clock := simclock.New()
	anyServer := func(*Server) bool { return true }
	for _, policy := range []Policy{LeastConnections, RoundRobin} {
		empty := NewBalancer(policy)
		if _, err := empty.PickWhere(anyServer); !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v: empty balancer: err = %v, want ErrNoActiveServer", policy, err)
		}

		b, servers := newFleet(t, clock, 2)
		b.policy = policy
		for _, s := range servers {
			b.SetDraining(s, true)
		}
		if _, err := b.PickWhere(anyServer); !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v: all-draining: err = %v, want ErrNoActiveServer", policy, err)
		}
		b.SetDraining(servers[0], false)
		if s, err := b.PickWhere(anyServer); err != nil || s != servers[0] {
			t.Fatalf("policy %v: undrained server not picked (err=%v)", policy, err)
		}

		for _, s := range servers {
			b.SetDraining(s, false)
			s.Node.SetActive(false)
		}
		if _, err := b.PickWhere(anyServer); !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v: all-parked: err = %v, want ErrNoActiveServer", policy, err)
		}
		for _, s := range servers {
			s.Node.SetActive(true)
		}
		if _, err := b.PickWhere(func(*Server) bool { return false }); !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v: reject-all predicate: err = %v, want ErrNoActiveServer", policy, err)
		}
	}
}
