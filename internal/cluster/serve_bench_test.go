package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/httpapp"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// newServeStack builds one edge serving stack (clock, node, server)
// over a fresh instance of the sensor-hub subject, optionally pinned to
// the tree-walking reference evaluator, with the store warmed by a few
// ingest requests so read services have data to chew on.
func newServeStack(tb testing.TB, refEval bool) (*Server, *simclock.Clock, workload.Subject) {
	tb.Helper()
	subj, err := workload.ByName("sensor-hub")
	if err != nil {
		tb.Fatal(err)
	}
	app, err := subj.NewApp()
	if err != nil {
		tb.Fatal(err)
	}
	app.Interp().SetReferenceEval(refEval)
	clock := simclock.New()
	server := NewServer("edge0", NewNode(clock, RPi4Spec), app)
	for i := 0; i < 32; i++ {
		server.Handle(subj.SampleRequest(0, i, 42), func(*httpapp.Response, time.Duration, error) {})
		clock.Run()
	}
	return server, clock, subj
}

// benchmarkServe measures the edge serve path end to end — balancer-side
// Handle, handler execution in the script interpreter, simulated node
// latency — on the subject's primary ingest service, whose summarize
// loop over the posted samples makes it the interpreter-bound service
// class the paper targets. refEval selects the tree-walking reference
// evaluator instead of the bytecode VM.
func benchmarkServe(b *testing.B, refEval bool) {
	server, clock, subj := newServeStack(b, refEval)
	req := subj.SampleRequest(subj.Primary, 0, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server.Handle(req, func(*httpapp.Response, time.Duration, error) {})
		clock.Run()
	}
}

func BenchmarkServeCompiled(b *testing.B) { benchmarkServe(b, false) }
func BenchmarkServeTreeWalk(b *testing.B) { benchmarkServe(b, true) }

// benchmarkServeMixed drives a request mix over every service (writes
// included), so the interpreter share of the serve path is smaller and
// the speedup is correspondingly more modest than the primary-service
// numbers.
func benchmarkServeMixed(b *testing.B, refEval bool) {
	server, clock, subj := newServeStack(b, refEval)
	const nreqs = 64
	reqs := make([]*httpapp.Request, 0, nreqs)
	for i := 0; i < nreqs; i++ {
		reqs = append(reqs, subj.SampleRequest(i%len(subj.Services), i, 42))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server.Handle(reqs[i%nreqs], func(*httpapp.Response, time.Duration, error) {})
		clock.Run()
	}
}

func BenchmarkServeMixedCompiled(b *testing.B) { benchmarkServeMixed(b, false) }
func BenchmarkServeMixedTreeWalk(b *testing.B) { benchmarkServeMixed(b, true) }

// TestConcurrentServeCompiled pins the concurrency contract of the
// compiled interpreter under the race detector: one interpreter per
// service instance, invocations serialized per instance — while the
// process-wide machine pool and per-program bytecode caches are shared
// by all instances. Each goroutine owns a full serving stack (clock,
// node, server, app instance) over the same subject source.
func TestConcurrentServeCompiled(t *testing.T) {
	subj, err := workload.ByName("sensor-hub")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const requests = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app, err := subj.NewApp()
			if err != nil {
				errs <- err
				return
			}
			clock := simclock.New()
			server := NewServer(fmt.Sprintf("edge%d", g), NewNode(clock, RPi4Spec), app)
			for i := 0; i < requests; i++ {
				req := subj.SampleRequest(i%len(subj.Services), i, int64(g))
				var handleErr error
				server.Handle(req, func(resp *httpapp.Response, lat time.Duration, err error) {
					handleErr = err
				})
				clock.Run()
				if handleErr != nil {
					errs <- fmt.Errorf("edge%d request %d: %w", g, i, handleErr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
