package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/httpapp"
	"repro/internal/netem"
	"repro/internal/simclock"
)

const echoSrc = `
func work(req any, res any) any {
	cpu(num(req.param("ops")))
	res.send("done")
	return nil
}`

func newWorkApp(t testing.TB) *httpapp.App {
	t.Helper()
	app, err := httpapp.New("work", echoSrc, []httpapp.Route{{Method: "GET", Path: "/work", Handler: "work"}})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func workReq(ops string) *httpapp.Request {
	return &httpapp.Request{Method: "GET", Path: "/work", Query: map[string]string{"ops": ops}}
}

func TestServiceTimeScalesWithSpeed(t *testing.T) {
	ops := 10000.0
	t3 := RPi3Spec.ServiceTime(ops)
	t4 := RPi4Spec.ServiceTime(ops)
	tc := CloudSpec.ServiceTime(ops)
	if !(tc < t4 && t4 < t3) {
		t.Fatalf("ordering wrong: cloud=%v rpi4=%v rpi3=%v", tc, t4, t3)
	}
	ratio := float64(t3) / float64(t4)
	if ratio < 1.7 || ratio > 1.9 {
		t.Fatalf("RPi4/RPi3 speed ratio = %.2f, want ≈ 1.8", ratio)
	}
	if RPi3Spec.ServiceTime(0) != 0 || RPi3Spec.ServiceTime(-5) != 0 {
		t.Fatal("nonpositive ops must take zero time")
	}
}

func TestNodeProcessQueues(t *testing.T) {
	clock := simclock.New()
	spec := DeviceSpec{Name: "uni", Cores: 1, OpsPerSec: 1000}
	node := NewNode(clock, spec)
	var lats []time.Duration
	// Two 1000-op jobs on one core: 1s and 2s latencies.
	node.Process(1000, func(l time.Duration) { lats = append(lats, l) })
	node.Process(1000, func(l time.Duration) { lats = append(lats, l) })
	clock.Run()
	if len(lats) != 2 || lats[0] != time.Second || lats[1] != 2*time.Second {
		t.Fatalf("latencies = %v", lats)
	}
	if node.Served() != 2 {
		t.Fatalf("served = %d", node.Served())
	}
}

func TestNodeMultiCoreParallelism(t *testing.T) {
	clock := simclock.New()
	node := NewNode(clock, DeviceSpec{Name: "quad", Cores: 4, OpsPerSec: 1000})
	done := 0
	for i := 0; i < 4; i++ {
		node.Process(1000, func(l time.Duration) {
			if l != time.Second {
				t.Errorf("latency = %v, want 1s (parallel cores)", l)
			}
			done++
		})
	}
	clock.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

func TestNodeUtilizationAndQueueDelay(t *testing.T) {
	clock := simclock.New()
	node := NewNode(clock, DeviceSpec{Name: "uni", Cores: 1, OpsPerSec: 1000})
	node.Process(2000, nil)
	if got := node.QueueDelay(); got != 2*time.Second {
		t.Fatalf("QueueDelay = %v", got)
	}
	clock.Run()
	clock.Advance(2 * time.Second) // total elapsed 4s, busy 2s
	u := node.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("Utilization = %v, want ≈ 0.5", u)
	}
}

func TestNodePowerStates(t *testing.T) {
	clock := simclock.New()
	node := NewNode(clock, RPi3Spec)
	clock.Advance(10 * time.Second)
	activeJ := node.Energy.Joules()
	node.SetActive(false)
	clock.Advance(10 * time.Second)
	totalJ := node.Energy.Joules()
	lowJ := totalJ - activeJ
	if lowJ >= activeJ {
		t.Fatalf("low-power %v J should be below active %v J", lowJ, activeJ)
	}
	if node.Active() {
		t.Fatal("node still active")
	}
}

func TestServerHandle(t *testing.T) {
	clock := simclock.New()
	node := NewNode(clock, DeviceSpec{Name: "n", Cores: 1, OpsPerSec: 1000})
	srv := NewServer("s", node, newWorkApp(t))
	mirrored := 0
	srv.AfterInvoke = func() { mirrored++ }
	var gotResp *httpapp.Response
	srv.Handle(workReq("500"), func(resp *httpapp.Response, lat time.Duration, err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		gotResp = resp
		if lat <= 0 {
			t.Errorf("latency = %v", lat)
		}
	})
	if srv.ActiveConns() != 1 {
		t.Fatalf("conns = %d during processing", srv.ActiveConns())
	}
	clock.Run()
	if srv.ActiveConns() != 0 {
		t.Fatal("conns not released")
	}
	if gotResp == nil || string(gotResp.Body) != `"done"` {
		t.Fatalf("resp = %v", gotResp)
	}
	if mirrored != 1 {
		t.Fatalf("AfterInvoke ran %d times", mirrored)
	}
}

func TestServerWrapInvokeSerializesCriticalSection(t *testing.T) {
	clock := simclock.New()
	node := NewNode(clock, DeviceSpec{Name: "n", Cores: 1, OpsPerSec: 1000})
	srv := NewServer("s", node, newWorkApp(t))
	var order []string
	srv.AfterInvoke = func() { order = append(order, "mirror") }
	srv.WrapInvoke = func(f func()) {
		order = append(order, "lock")
		f()
		order = append(order, "unlock")
	}
	srv.Handle(workReq("100"), func(resp *httpapp.Response, _ time.Duration, err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		if resp == nil {
			t.Error("nil response")
		}
	})
	clock.Run()
	// The wrapper must bracket both the invocation and the mirror hook:
	// that is what lets the TCP transport's Do serialize app mutations
	// with its sync goroutines.
	want := []string{"lock", "mirror", "unlock"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func newTestBalancer(t *testing.T, clock *simclock.Clock, policy Policy, n int) *Balancer {
	t.Helper()
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = NewServer(string(rune('a'+i)), NewNode(clock, RPi4Spec), newWorkApp(t))
	}
	return NewBalancer(policy, servers...)
}

func TestBalancerLeastConnections(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, LeastConnections, 3)
	b.Servers()[0].conns.Store(5)
	b.Servers()[1].conns.Store(1)
	b.Servers()[2].conns.Store(3)
	s, err := b.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if s != b.Servers()[1] {
		t.Fatalf("picked %s, want least-loaded", s.Name)
	}
	if b.TotalConns() != 9 {
		t.Fatalf("TotalConns = %d", b.TotalConns())
	}
}

func TestBalancerSkipsInactive(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, LeastConnections, 2)
	b.Servers()[0].conns.Store(0)
	b.Servers()[0].Node.SetActive(false)
	b.Servers()[1].conns.Store(99)
	s, err := b.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if s != b.Servers()[1] {
		t.Fatal("picked a parked server")
	}
	b.Servers()[1].Node.SetActive(false)
	if _, err := b.Pick(); !errors.Is(err, ErrNoActiveServer) {
		t.Fatalf("err = %v", err)
	}
}

func TestBalancerRoundRobin(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, RoundRobin, 3)
	var picks []string
	for i := 0; i < 6; i++ {
		s, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		picks = append(picks, s.Name)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v", picks)
		}
	}
}

func TestSetActiveCountBounds(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, LeastConnections, 4)
	b.SetActiveCount(2)
	if b.ActiveCount() != 2 {
		t.Fatalf("ActiveCount = %d", b.ActiveCount())
	}
	b.SetActiveCount(0) // clamps to 1
	if b.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1 (clamp)", b.ActiveCount())
	}
	b.SetActiveCount(99) // clamps to 4
	if b.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d, want 4 (clamp)", b.ActiveCount())
	}
}

func TestAutoscalerScalesWithLoad(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, LeastConnections, 4)
	as, err := NewAutoscaler(clock, b, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy load: 7 conns / 2 per replica → 4 replicas.
	b.Servers()[0].conns.Store(7)
	as.Adjust()
	if b.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d, want 4", b.ActiveCount())
	}
	// Load drains → scale to 1 (but never 0).
	for _, s := range b.Servers() {
		s.conns.Store(0)
	}
	as.Adjust()
	if b.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", b.ActiveCount())
	}
	// All nodes start active, so only the scale-down transitioned.
	if as.Transitions() != 1 {
		t.Fatalf("Transitions = %d, want 1", as.Transitions())
	}
}

func TestAutoscalerValidation(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, LeastConnections, 1)
	if _, err := NewAutoscaler(clock, b, 0, time.Second); err == nil {
		t.Fatal("zero connsPerReplica accepted")
	}
	if _, err := NewAutoscaler(clock, b, 1, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestClientEndToEnd(t *testing.T) {
	clock := simclock.New()
	link, err := netem.NewDuplex(clock, netem.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(clock, MobileSpec, link)
	node := NewNode(clock, RPi4Spec)
	srv := NewServer("edge", node, newWorkApp(t))
	route := func() (*Server, error) { return srv, nil }

	OpenLoop(clock, 10, 5, func(i int) {
		client.Send(workReq("1000"), route, nil)
	})
	clock.Run()
	if client.Completed != 5 || client.Failed != 0 {
		t.Fatalf("completed=%d failed=%d", client.Completed, client.Failed)
	}
	if client.Latency.N() != 5 || client.Latency.Mean() <= 0 {
		t.Fatalf("latency series = %d points, mean %v", client.Latency.N(), client.Latency.Mean())
	}
	if client.EnergyJoules <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestClientSlowLinkCostsMoreEnergy(t *testing.T) {
	run := func(cfg netem.Config) float64 {
		clock := simclock.New()
		link, err := netem.NewDuplex(clock, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		client := NewClient(clock, MobileSpec, link)
		srv := NewServer("s", NewNode(clock, CloudSpec), newWorkApp(t))
		route := func() (*Server, error) { return srv, nil }
		OpenLoop(clock, 1, 10, func(int) { client.Send(workReq("1000"), route, nil) })
		clock.Run()
		return client.EnergyJoules
	}
	fast := run(netem.FastWAN)
	slow := run(netem.LimitedWAN(100, 1000))
	if slow <= fast {
		t.Fatalf("slow link energy %v must exceed fast link energy %v", slow, fast)
	}
}

func TestClientRouteFailureCounted(t *testing.T) {
	clock := simclock.New()
	link, err := netem.NewDuplex(clock, netem.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(clock, MobileSpec, link)
	route := func() (*Server, error) { return nil, ErrNoActiveServer }
	client.Send(workReq("1"), route, func(_ *httpapp.Response, err error) {
		if !errors.Is(err, ErrNoActiveServer) {
			t.Errorf("err = %v", err)
		}
	})
	clock.Run()
	if client.Failed != 1 || client.Completed != 0 {
		t.Fatalf("failed=%d completed=%d", client.Failed, client.Completed)
	}
}

func TestOpenLoopRate(t *testing.T) {
	clock := simclock.New()
	var times []time.Duration
	OpenLoop(clock, 2, 4, func(int) { times = append(times, clock.Now()) })
	clock.Run()
	if len(times) != 4 {
		t.Fatalf("fired %d", len(times))
	}
	if times[0] != 500*time.Millisecond || times[3] != 2*time.Second {
		t.Fatalf("times = %v", times)
	}
	OpenLoop(clock, 0, 5, func(int) { t.Fatal("fired with rps=0") })
	clock.Run()
}

func BenchmarkNodeProcess(b *testing.B) {
	clock := simclock.New()
	node := NewNode(clock, RPi4Spec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		node.Process(100, nil)
		if i%1024 == 1023 {
			clock.Run()
		}
	}
	clock.Run()
}

func TestAutoscalerPeriodicLoop(t *testing.T) {
	clock := simclock.New()
	b := newTestBalancer(t, clock, LeastConnections, 4)
	as, err := NewAutoscaler(clock, b, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	as.Start()
	as.Start() // idempotent
	// Load appears at t=0; the first tick (t=1s) scales nothing down
	// because conns are high; when load drains at t=5s the controller
	// parks replicas on its next tick.
	b.Servers()[0].conns.Store(8)
	clock.At(5*time.Second, func() { b.Servers()[0].conns.Store(0) })
	clock.RunUntil(10 * time.Second)
	as.Stop()
	clock.Run()
	if got := b.ActiveCount(); got != 1 {
		t.Fatalf("ActiveCount = %d, want 1 after load drained", got)
	}
	if as.Transitions() == 0 {
		t.Fatal("controller never adjusted")
	}
}

func TestSendViaDispatchErrors(t *testing.T) {
	clock := simclock.New()
	link, err := netem.NewDuplex(clock, netem.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(clock, MobileSpec, link)
	client.SendVia(workReq("1"), func(r *httpapp.Request, cb func(*httpapp.Response, error)) {
		cb(nil, ErrNoActiveServer)
	}, func(resp *httpapp.Response, err error) {
		if !errors.Is(err, ErrNoActiveServer) {
			t.Errorf("err = %v", err)
		}
	})
	clock.Run()
	if client.Failed != 1 {
		t.Fatalf("Failed = %d", client.Failed)
	}
}
