// Package cluster simulates the paper's deployment hardware on virtual
// time: a cloud server (Dell OptiPlex-class), edge nodes (Raspberry Pi 3
// and 4), and mobile clients. Nodes execute real service invocations
// (the interpreter runs for real); only their *duration* is modeled, by
// dividing the invocation's metered ops by the device's speed. The
// package also provides the least-connections load balancer and the
// elasticity controller of §IV-D, which powers replicas up and down with
// client-request volume.
package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/energy"
	"repro/internal/httpapp"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// ErrNoActiveServer is returned when the balancer has nothing to route
// to.
var ErrNoActiveServer = errors.New("cluster: no active server")

// DeviceSpec describes a device's compute capability and power draw.
type DeviceSpec struct {
	Name string
	// Cores is the number of independent execution units.
	Cores int
	// OpsPerSec is per-core throughput in abstract script ops.
	OpsPerSec float64
	// Power is the device's power profile.
	Power energy.Profile
}

// Device presets. Per-core speeds are calibrated so the RPi-4/RPi-3
// ratio is 1.8 — the processor-benchmark figure the paper cites (its own
// measurement was 1.71) — and the cloud box is roughly an order of
// magnitude faster per core than the edge devices, with twice the cores.
var (
	CloudSpec = DeviceSpec{Name: "cloud-optiplex", Cores: 8, OpsPerSec: 1.0e6,
		Power: energy.Profile{ActiveW: 90, LowPowerW: 25}}
	RPi4Spec   = DeviceSpec{Name: "rpi-4", Cores: 4, OpsPerSec: 0.18e6, Power: energy.RPi4Profile}
	RPi3Spec   = DeviceSpec{Name: "rpi-3", Cores: 4, OpsPerSec: 0.10e6, Power: energy.RPi3Profile}
	MobileSpec = DeviceSpec{Name: "snapdragon", Cores: 8, OpsPerSec: 0.15e6,
		Power: energy.MobileProfile}
)

// ServiceTime converts metered ops to execution time on one core.
func (d DeviceSpec) ServiceTime(ops float64) time.Duration {
	if ops <= 0 {
		return 0
	}
	return time.Duration(ops / d.OpsPerSec * float64(time.Second))
}

// Node is one simulated device: per-core FIFO scheduling plus an energy
// meter.
type Node struct {
	Spec   DeviceSpec
	Energy *energy.Meter

	clock     *simclock.Clock
	coreBusy  []time.Duration
	active    bool
	served    int64
	busyOps   float64
	createdAt time.Duration
}

// NewNode returns an active node on the given clock.
func NewNode(clock *simclock.Clock, spec DeviceSpec) *Node {
	return &Node{
		Spec:      spec,
		Energy:    energy.NewMeter(clock, spec.Power, energy.StateActive),
		clock:     clock,
		coreBusy:  make([]time.Duration, spec.Cores),
		active:    true,
		createdAt: clock.Now(),
	}
}

// Active reports whether the node is powered up for serving.
func (n *Node) Active() bool { return n.active }

// SetActive powers the node up (active) or parks it in low-power mode.
func (n *Node) SetActive(active bool) {
	n.active = active
	if active {
		n.Energy.SetState(energy.StateActive)
	} else {
		n.Energy.SetState(energy.StateLowPower)
	}
}

// Served returns the number of completed executions.
func (n *Node) Served() int64 { return n.served }

// Utilization returns mean busy fraction across cores since creation.
func (n *Node) Utilization() float64 {
	elapsed := (n.clock.Now() - n.createdAt).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return n.busyOps / n.Spec.OpsPerSec / float64(n.Spec.Cores) / elapsed
}

// Process schedules ops on the earliest-free core and calls done with
// the execution latency (queueing + service) when it completes.
func (n *Node) Process(ops float64, done func(execLatency time.Duration)) {
	now := n.clock.Now()
	best := 0
	for i := 1; i < len(n.coreBusy); i++ {
		if n.coreBusy[i] < n.coreBusy[best] {
			best = i
		}
	}
	start := now
	if n.coreBusy[best] > start {
		start = n.coreBusy[best]
	}
	finish := start + n.Spec.ServiceTime(ops)
	n.coreBusy[best] = finish
	n.busyOps += ops
	n.clock.At(finish, func() {
		n.served++
		if done != nil {
			done(finish - now)
		}
	})
}

// QueueDelay returns how long a request arriving now would wait for a
// core.
func (n *Node) QueueDelay() time.Duration {
	best := n.coreBusy[0]
	for _, b := range n.coreBusy[1:] {
		if b < best {
			best = b
		}
	}
	if d := best - n.clock.Now(); d > 0 {
		return d
	}
	return 0
}

// Server is a service instance hosted on a node.
type Server struct {
	Name string
	Node *Node
	App  *httpapp.App

	// conns is atomic: the fleet scaler and balancer read it from
	// control goroutines while request goroutines move it.
	conns atomic.Int64
	// AfterInvoke, when set, runs after every successful mutating
	// invocation — the replica runtime uses it to mirror global-variable
	// changes into the CRDT state.
	AfterInvoke func()
	// WrapInvoke, when set, runs the mutating critical section
	// (App.Invoke plus AfterInvoke) inside it. The TCP transport installs
	// the endpoint's Do here so application mutations serialize with the
	// background synchronization goroutines touching the same state.
	WrapInvoke func(func())
	// WrapRead, when set, runs read-only invocations inside it. The TCP
	// transport installs the endpoint's RDo here, so reads share the
	// transport lock with each other while still excluding writers.
	WrapRead func(func())
	// ReadOnly classifies a request as safe for the concurrent read
	// path (typically App.RequestReadOnly, driven by the analysis
	// pipeline's state-use facts). When nil every invocation takes the
	// serialized write path — exactly the pre-scheduler behavior.
	ReadOnly func(*httpapp.Request) bool

	// rwRead/rwWrite/rwMispredict count scheduler outcomes: invocations
	// served on the shared read path, on the exclusive write path, and
	// read-path attempts aborted by the write guard and re-run serialized.
	rwRead       atomic.Int64
	rwWrite      atomic.Int64
	rwMispredict atomic.Int64

	// reqCounter and errCounter mirror per-server request totals into
	// an observability registry (nil-safe no-ops when unset).
	reqCounter *obs.Counter
	errCounter *obs.Counter
	// readCounter/writeCounter/mispredictCounter mirror the scheduler
	// outcome counts as the serve.rw.* observability family.
	readCounter       *obs.Counter
	writeCounter      *obs.Counter
	mispredictCounter *obs.Counter
}

// NewServer hosts app on node.
func NewServer(name string, node *Node, app *httpapp.App) *Server {
	return &Server{Name: name, Node: node, App: app}
}

// SetObs mirrors this server's request totals into the registry as
// "cluster.requests.<name>" and "cluster.errors.<name>" counters. The
// counters are resolved once here so the per-request cost is a
// nil-safe atomic increment.
func (s *Server) SetObs(o *obs.Obs) {
	s.reqCounter = o.Counter("cluster.requests." + s.Name)
	s.errCounter = o.Counter("cluster.errors." + s.Name)
	s.readCounter = o.Counter("serve.rw.read." + s.Name)
	s.writeCounter = o.Counter("serve.rw.write." + s.Name)
	s.mispredictCounter = o.Counter("serve.rw.mispredict." + s.Name)
}

// ActiveConns returns the server's in-flight request count.
func (s *Server) ActiveConns() int { return int(s.conns.Load()) }

// RWStats returns the scheduler outcome counts: read-path invocations,
// write-path invocations, and write-guard mispredict fallbacks.
func (s *Server) RWStats() (read, write, mispredict int64) {
	return s.rwRead.Load(), s.rwWrite.Load(), s.rwMispredict.Load()
}

// Invoke runs one invocation through the reader/writer scheduler.
// Requests the classifier marks read-only take the shared slot
// (App.InvokeRead under WrapRead) and may run concurrently with each
// other; everything else — and any read attempt the interpreter's
// write guard aborts — takes the exclusive slot (App.Invoke plus
// AfterInvoke under WrapInvoke). A guard abort re-runs exactly once on
// the write path: the guard fires before any shared state is touched,
// so the serialized re-run observes pristine state and the final
// response and state transitions are identical to a fully serialized
// execution.
func (s *Server) Invoke(req *httpapp.Request) (*httpapp.Response, float64, error) {
	if s.ReadOnly != nil && s.ReadOnly(req) {
		var resp *httpapp.Response
		var ops float64
		var err error
		read := func() { resp, ops, err = s.App.InvokeRead(req) }
		if s.WrapRead != nil {
			s.WrapRead(read)
		} else {
			read()
		}
		if err == nil || !errors.Is(err, httpapp.ErrWriteGuard) {
			s.rwRead.Add(1)
			s.readCounter.Add(1)
			return resp, ops, err
		}
		s.rwMispredict.Add(1)
		s.mispredictCounter.Add(1)
	}
	var resp *httpapp.Response
	var ops float64
	var err error
	invoke := func() {
		resp, ops, err = s.App.Invoke(req)
		if err == nil && s.AfterInvoke != nil {
			s.AfterInvoke()
		}
	}
	if s.WrapInvoke != nil {
		s.WrapInvoke(invoke)
	} else {
		invoke()
	}
	s.rwWrite.Add(1)
	s.writeCounter.Add(1)
	return resp, ops, err
}

// Handle executes a request: the app runs immediately (its state
// changes take effect now) and the response is delivered after the
// node's simulated execution latency.
func (s *Server) Handle(req *httpapp.Request, done func(*httpapp.Response, time.Duration, error)) {
	s.conns.Add(1)
	s.reqCounter.Add(1)
	resp, ops, err := s.Invoke(req)
	if err != nil {
		s.errCounter.Add(1)
	}
	s.Node.Process(ops, func(lat time.Duration) {
		s.conns.Add(-1)
		done(resp, lat, err)
	})
}

// Policy selects how the balancer picks a server.
type Policy int

// Balancing policies.
const (
	// LeastConnections routes to the active server with the fewest
	// in-flight requests (the paper's choice, §IV-D).
	LeastConnections Policy = iota + 1
	// RoundRobin rotates through active servers (ablation baseline).
	RoundRobin
)

// Balancer distributes client requests across edge replicas.
type Balancer struct {
	servers []*Server
	policy  Policy
	rrNext  int
	// draining servers are excluded from routing while they finish
	// their in-flight requests — the elasticity controller drains a
	// replica to zero connections before parking it, so no request is
	// ever dropped by a scale-down.
	draining map[*Server]bool
}

// NewBalancer returns a balancer over the given servers.
func NewBalancer(policy Policy, servers ...*Server) *Balancer {
	return &Balancer{servers: servers, policy: policy, draining: map[*Server]bool{}}
}

// SetDraining marks or unmarks a server as draining. Draining servers
// keep serving their in-flight requests but receive no new ones.
func (b *Balancer) SetDraining(s *Server, draining bool) {
	if draining {
		b.draining[s] = true
	} else {
		delete(b.draining, s)
	}
}

// IsDraining reports whether a server is excluded from routing.
func (b *Balancer) IsDraining(s *Server) bool { return b.draining[s] }

// DrainingCount returns how many servers are currently draining.
func (b *Balancer) DrainingCount() int { return len(b.draining) }

// routable reports whether the balancer may send new work to s.
func (b *Balancer) routable(s *Server) bool {
	return s.Node.Active() && !b.draining[s]
}

// Servers returns the managed servers.
func (b *Balancer) Servers() []*Server { return b.servers }

// ActiveCount returns how many servers are powered up.
func (b *Balancer) ActiveCount() int {
	n := 0
	for _, s := range b.servers {
		if s.Node.Active() {
			n++
		}
	}
	return n
}

// TotalConns returns in-flight requests across active servers — the
// balancer's traffic-volume estimate (§IV-D capability 2).
func (b *Balancer) TotalConns() int {
	n := 0
	for _, s := range b.servers {
		if s.Node.Active() {
			n += s.ActiveConns()
		}
	}
	return n
}

// Pick selects a server for the next request. With no routable server
// (empty balancer, everything parked or draining) it returns
// ErrNoActiveServer rather than panicking, and a RoundRobin pick that
// skipped draining servers keeps its rotation position anchored to the
// server actually chosen, so un-draining a server never replays the
// rotation from a stale offset.
func (b *Balancer) Pick() (*Server, error) {
	return b.PickWhere(func(*Server) bool { return true })
}

// PickWhere selects a server under the balancer's policy, considering
// only active servers that satisfy pred — the placement controller
// routes through it so a request lands on a replica where its service
// is actually enabled.
func (b *Balancer) PickWhere(pred func(*Server) bool) (*Server, error) {
	if len(b.servers) == 0 {
		return nil, ErrNoActiveServer
	}
	switch b.policy {
	case RoundRobin:
		for i := 0; i < len(b.servers); i++ {
			idx := (b.rrNext + i) % len(b.servers)
			s := b.servers[idx]
			if b.routable(s) && pred(s) {
				// Advance from the chosen slot, not the scan start, so
				// skipped (draining) servers don't shift the rotation.
				b.rrNext = (idx + 1) % len(b.servers)
				return s, nil
			}
		}
		return nil, ErrNoActiveServer
	default: // LeastConnections
		var best *Server
		bestConns := 0
		for _, s := range b.servers {
			if !b.routable(s) || !pred(s) {
				continue
			}
			if c := s.ActiveConns(); best == nil || c < bestConns {
				best, bestConns = s, c
			}
		}
		if best == nil {
			return nil, ErrNoActiveServer
		}
		return best, nil
	}
}

// SetActiveCount powers up the first k servers and parks the rest —
// used by the elasticity controller and by fixed-size experiments.
func (b *Balancer) SetActiveCount(k int) {
	if k < 1 {
		k = 1
	}
	if k > len(b.servers) {
		k = len(b.servers)
	}
	for i, s := range b.servers {
		s.Node.SetActive(i < k)
	}
}

// Autoscaler is the elasticity controller of §IV-D: it monitors the
// number of active connections and adjusts the number of powered-up
// replicas, parking the rest in low-power mode so they "can be brought
// back without incurring unnecessary delays".
type Autoscaler struct {
	clock    *simclock.Clock
	balancer *Balancer
	// ConnsPerReplica is the load one replica is expected to absorb.
	ConnsPerReplica int
	interval        time.Duration
	running         bool
	// transitions counts scale events, for reporting.
	transitions int
}

// NewAutoscaler returns a controller sampling every interval.
func NewAutoscaler(clock *simclock.Clock, b *Balancer, connsPerReplica int, interval time.Duration) (*Autoscaler, error) {
	if connsPerReplica < 1 {
		return nil, fmt.Errorf("cluster: connsPerReplica must be ≥ 1, got %d", connsPerReplica)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("cluster: autoscaler interval must be positive, got %v", interval)
	}
	return &Autoscaler{clock: clock, balancer: b, ConnsPerReplica: connsPerReplica, interval: interval}, nil
}

// Transitions returns the number of scale adjustments made.
func (a *Autoscaler) Transitions() int { return a.transitions }

// Start begins periodic adjustment.
func (a *Autoscaler) Start() {
	if a.running {
		return
	}
	a.running = true
	a.tick()
}

// Stop halts adjustment.
func (a *Autoscaler) Stop() { a.running = false }

func (a *Autoscaler) tick() {
	a.clock.After(a.interval, func() {
		if !a.running {
			return
		}
		a.Adjust()
		a.tick()
	})
}

// Adjust applies one scaling decision immediately.
func (a *Autoscaler) Adjust() {
	conns := a.balancer.TotalConns()
	want := (conns + a.ConnsPerReplica - 1) / a.ConnsPerReplica
	if want < 1 {
		want = 1
	}
	if want > len(a.balancer.servers) {
		want = len(a.balancer.servers)
	}
	if want != a.balancer.ActiveCount() {
		a.balancer.SetActiveCount(want)
		a.transitions++
	}
}
