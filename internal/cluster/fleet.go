package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/simclock"
)

// FleetScaler is the fleet-level elasticity controller (ROADMAP item 1).
// Where Autoscaler reacts to the instantaneous connection count, the
// FleetScaler integrates completed request volume over a sliding window
// of sampling intervals and sizes the serving set to that demand — so a
// brief lull does not flap replicas, and a sustained ramp powers them up
// one windowful ahead of saturation.
//
// Scale-down is drain-first: a surplus replica is excluded from routing
// (Balancer.SetDraining) and only parked into low-power mode — with the
// OnPark hook, which the deployment uses to suspend the replica's
// synchronization — once its last in-flight request completes. Scale-up
// reverses the path: power up, OnUnpark (the durable re-handshake
// resync), then routing resumes. The energy effect is captured by each
// node's meter: parked replicas accrue at their low-power wattage.
type FleetScaler struct {
	clock    *simclock.Clock
	balancer *Balancer
	interval time.Duration
	// ReqPerReplica is the completed-request volume one replica is
	// expected to absorb per interval.
	reqPerReplica float64
	min           int

	// OnPark runs when a drained replica is powered down; OnUnpark when
	// a parked replica is powered back up. Both may be nil.
	OnPark   func(*Server)
	OnUnpark func(*Server)

	lastServed int64
	samples    []int64 // ring buffer of per-interval completed counts
	next       int
	filled     int

	running     bool
	gen         uint64
	transitions int
	parks       int
	unparks     int
}

// NewFleetScaler returns a controller sampling every interval and
// averaging demand over window intervals.
func NewFleetScaler(clock *simclock.Clock, b *Balancer, reqPerReplica float64, interval time.Duration, window int) (*FleetScaler, error) {
	if reqPerReplica <= 0 {
		return nil, fmt.Errorf("cluster: reqPerReplica must be positive, got %v", reqPerReplica)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("cluster: fleet interval must be positive, got %v", interval)
	}
	if window < 1 {
		window = 1
	}
	return &FleetScaler{
		clock:         clock,
		balancer:      b,
		interval:      interval,
		reqPerReplica: reqPerReplica,
		min:           1,
		samples:       make([]int64, window),
	}, nil
}

// SetMinReplicas sets the floor on the serving set (default 1).
func (f *FleetScaler) SetMinReplicas(n int) {
	if n < 1 {
		n = 1
	}
	f.min = n
}

// Transitions returns the number of sizing decisions that changed the
// serving set; Parks and Unparks count the power transitions.
func (f *FleetScaler) Transitions() int { return f.transitions }

// Parks returns completed power-downs (post-drain).
func (f *FleetScaler) Parks() int { return f.parks }

// Unparks returns completed power-ups.
func (f *FleetScaler) Unparks() int { return f.unparks }

// Start begins periodic adjustment.
func (f *FleetScaler) Start() {
	if f.running {
		return
	}
	f.running = true
	f.gen++
	f.tick(f.gen)
}

// Stop halts adjustment.
func (f *FleetScaler) Stop() { f.running = false }

func (f *FleetScaler) tick(gen uint64) {
	f.clock.After(f.interval, func() {
		if !f.running || f.gen != gen {
			return
		}
		f.Adjust()
		f.tick(gen)
	})
}

// windowVolume returns the mean completed requests per interval across
// the filled window.
func (f *FleetScaler) windowVolume() float64 {
	if f.filled == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < f.filled; i++ {
		sum += f.samples[i]
	}
	return float64(sum) / float64(f.filled)
}

// Want returns the serving-set size the current window demands.
func (f *FleetScaler) Want() int {
	want := int(math.Ceil(f.windowVolume() / f.reqPerReplica))
	if want < f.min {
		want = f.min
	}
	if n := len(f.balancer.Servers()); want > n {
		want = n
	}
	return want
}

// Adjust samples request volume and applies one sizing decision
// immediately: the first Want() servers serve, the rest drain and park.
func (f *FleetScaler) Adjust() {
	servers := f.balancer.Servers()
	var total int64
	for _, s := range servers {
		total += s.Node.Served()
	}
	f.samples[f.next] = total - f.lastServed
	f.lastServed = total
	f.next = (f.next + 1) % len(f.samples)
	if f.filled < len(f.samples) {
		f.filled++
	}

	want := f.Want()
	changed := false
	for i, s := range servers {
		if i < want {
			if f.balancer.IsDraining(s) {
				f.balancer.SetDraining(s, false)
				changed = true
			}
			if !s.Node.Active() {
				s.Node.SetActive(true)
				f.unparks++
				changed = true
				if f.OnUnpark != nil {
					f.OnUnpark(s)
				}
			}
		} else if s.Node.Active() && !f.balancer.IsDraining(s) {
			f.balancer.SetDraining(s, true)
			changed = true
		}
	}
	if changed {
		f.transitions++
	}
	// Park any drained replica whose last request has completed. This
	// runs every interval, so a replica drains for as many intervals as
	// its queue needs — never a forced teardown mid-request.
	for _, s := range servers {
		if f.balancer.IsDraining(s) && s.ActiveConns() == 0 {
			f.balancer.SetDraining(s, false)
			s.Node.SetActive(false)
			f.parks++
			if f.OnPark != nil {
				f.OnPark(s)
			}
		}
	}
}
