package cluster

import (
	"time"

	"repro/internal/energy"
	"repro/internal/httpapp"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/simclock"
)

// Client is a simulated mobile client: it sends requests over its
// network link, measures end-to-end latency, and accounts its own energy
// (active while the radio transmits, low-power idle while waiting for
// the response — §IV-C3).
type Client struct {
	Spec DeviceSpec
	// Link connects the client to its serving tier (edge LAN or cloud
	// WAN).
	Link *netem.Duplex

	clock *simclock.Clock

	// Latency collects end-to-end request latencies (ms).
	Latency metrics.Series
	// EnergyJoules accumulates the client's per-request energy.
	EnergyJoules float64
	// Completed and Failed count finished requests.
	Completed int
	Failed    int
}

// NewClient returns a client on the given clock and link.
func NewClient(clock *simclock.Clock, spec DeviceSpec, link *netem.Duplex) *Client {
	return &Client{Spec: spec, Link: link, clock: clock}
}

// Route selects a destination server for a request.
type Route func() (*Server, error)

// Dispatch delivers a request to its serving tier and calls back with
// the response. The deployment's Remote Proxy (edge replica with
// forwarding) plugs in here.
type Dispatch func(req *httpapp.Request, done func(*httpapp.Response, error))

// Send models one request: uplink transfer, server execution, downlink
// transfer. done (optional) receives the response after the downlink
// delivery. Handler failures are counted and reported to done with a
// nil latency contribution — failure redirection is the proxy layer's
// job, not the client's.
func (c *Client) Send(req *httpapp.Request, route Route, done func(*httpapp.Response, error)) {
	c.SendVia(req, func(r *httpapp.Request, cb func(*httpapp.Response, error)) {
		srv, err := route()
		if err != nil {
			cb(nil, err)
			return
		}
		srv.Handle(r, func(resp *httpapp.Response, _ time.Duration, err error) {
			cb(resp, err)
		})
	}, done)
}

// SendVia models one request through an arbitrary dispatcher: uplink
// transfer, dispatch, downlink transfer.
func (c *Client) SendVia(req *httpapp.Request, dispatch Dispatch, done func(*httpapp.Response, error)) {
	start := c.clock.Now()
	upSer := serializationTime(c.Link.Up.Config(), req.Size())

	c.Link.Up.Send(req.Size(), func() {
		dispatch(req, func(resp *httpapp.Response, err error) {
			if err != nil && resp == nil {
				c.finish(start, upSer, 0, nil, err, done)
				return
			}
			respSize := 0
			if resp != nil {
				respSize = resp.Size()
			}
			downSer := serializationTime(c.Link.Down.Config(), respSize)
			c.Link.Down.Send(respSize, func() {
				c.finish(start, upSer, downSer, resp, err, done)
			})
		})
	})
}

func (c *Client) finish(start time.Duration, upSer, downSer time.Duration, resp *httpapp.Response, err error, done func(*httpapp.Response, error)) {
	total := c.clock.Now() - start
	active := upSer + downSer
	wait := total - active
	if wait < 0 {
		wait = 0
	}
	c.EnergyJoules += energy.MobileRequestEnergy(c.Spec.Power, active, wait)
	if err != nil {
		c.Failed++
	} else {
		c.Completed++
		c.Latency.AddDuration(total)
	}
	if done != nil {
		done(resp, err)
	}
}

func serializationTime(cfg netem.Config, size int) time.Duration {
	return time.Duration(float64(size) / cfg.BandwidthBps * float64(time.Second))
}

// OpenLoop schedules n request firings at the given rate (requests per
// second), starting one interval from now. fire receives the request
// index.
func OpenLoop(clock *simclock.Clock, rps float64, n int, fire func(i int)) {
	if rps <= 0 || n <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rps)
	for i := 0; i < n; i++ {
		i := i
		clock.After(time.Duration(i+1)*interval, func() { fire(i) })
	}
}
