package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/httpapp"
	"repro/internal/simclock"
)

// statSrc has a conditional write on an argument the static classifier
// flags — the scheduler tests force it read-only to exercise the
// mispredict fallback.
const statSrc = `
var count = 0

func stat(req any, res any) any {
	if req.param("mode") == "write" {
		count = count + 1
	}
	res.send(map[string]any{"count": count})
	return nil
}`

var statRoutes = []httpapp.Route{{Method: "GET", Path: "/stat", Handler: "stat"}}

func newStatServer(t testing.TB, readOnly func(*httpapp.Request) bool) *Server {
	t.Helper()
	app, err := httpapp.New("stat", statSrc, statRoutes)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer("stat", NewNode(simclock.New(), CloudSpec), app)
	srv.ReadOnly = readOnly
	return srv
}

func statReq(mode string) *httpapp.Request {
	q := map[string]string{}
	if mode != "" {
		q["mode"] = mode
	}
	return &httpapp.Request{Method: "GET", Path: "/stat", Query: q}
}

func TestSchedulerMispredictFallback(t *testing.T) {
	// Misclassify everything as read-only: writes must abort on the
	// guard and re-run exactly once on the exclusive path.
	srv := newStatServer(t, func(*httpapp.Request) bool { return true })
	resp, _, err := srv.Invoke(statReq("write"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != `{"count":1}` {
		t.Fatalf("body = %s (write applied %s times?)", resp.Body, resp.Body)
	}
	read, write, mis := srv.RWStats()
	if read != 0 || write != 1 || mis != 1 {
		t.Fatalf("rw stats = %d/%d/%d, want 0/1/1", read, write, mis)
	}
	// A genuine read stays on the shared path.
	if _, _, err := srv.Invoke(statReq("")); err != nil {
		t.Fatal(err)
	}
	read, write, mis = srv.RWStats()
	if read != 1 || write != 1 || mis != 1 {
		t.Fatalf("rw stats after read = %d/%d/%d, want 1/1/1", read, write, mis)
	}
}

func TestSchedulerDifferentialAgainstSerialized(t *testing.T) {
	// The same request sequence through a fully serialized server and a
	// scheduler server (with a deliberately wrong classifier) must yield
	// byte-identical responses at every step.
	serialized := newStatServer(t, nil)
	scheduled := newStatServer(t, func(*httpapp.Request) bool { return true })
	seq := []string{"", "write", "", "write", "write", "", ""}
	for i, mode := range seq {
		r1, c1, err1 := serialized.Invoke(statReq(mode))
		r2, c2, err2 := scheduled.Invoke(statReq(mode))
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: errs %v / %v", i, err1, err2)
		}
		if !bytes.Equal(r1.Body, r2.Body) || r1.Status != r2.Status {
			t.Fatalf("step %d (%q): serialized %s vs scheduled %s", i, mode, r1.Body, r2.Body)
		}
		if c1 != c2 {
			t.Fatalf("step %d (%q): cost %v vs %v", i, mode, c1, c2)
		}
	}
	_, write, mis := scheduled.RWStats()
	if mis != 3 || write != 3 {
		t.Fatalf("scheduled write/mispredict = %d/%d, want 3/3", write, mis)
	}
}

func TestSchedulerConcurrentMispredicts(t *testing.T) {
	// Readers and misclassified writers race through the scheduler; the
	// write guard plus exclusive fallback must keep the final count
	// exactly equal to the number of writes. The app's RWMutex is the
	// only coordination — run under -race this is the satellite's
	// correctness sweep.
	srv := newStatServer(t, func(*httpapp.Request) bool { return true })
	const writers, readers, perWorker = 4, 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, _, err := srv.Invoke(statReq("write")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, _, err := srv.Invoke(statReq("")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	resp, _, err := srv.Invoke(statReq(""))
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`{"count":%d}`, writers*perWorker)
	if string(resp.Body) != want {
		t.Fatalf("final state %s, want %s", resp.Body, want)
	}
	_, _, mis := srv.RWStats()
	if mis != writers*perWorker {
		t.Fatalf("mispredicts = %d, want %d", mis, writers*perWorker)
	}
}

func TestBalancerNoRoutableServer(t *testing.T) {
	for _, policy := range []Policy{LeastConnections, RoundRobin} {
		empty := NewBalancer(policy)
		if s, err := empty.Pick(); s != nil || !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v empty: %v, %v", policy, s, err)
		}
		clock := simclock.New()
		var servers []*Server
		for i := 0; i < 3; i++ {
			servers = append(servers, NewServer(fmt.Sprintf("s%d", i), NewNode(clock, RPi4Spec), newWorkApp(t)))
		}
		b := NewBalancer(policy, servers...)
		for _, s := range servers {
			b.SetDraining(s, true)
		}
		if s, err := b.Pick(); s != nil || !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v all-draining: %v, %v", policy, s, err)
		}
		if s, err := b.PickWhere(func(*Server) bool { return true }); s != nil || !errors.Is(err, ErrNoActiveServer) {
			t.Fatalf("policy %v all-draining PickWhere: %v, %v", policy, s, err)
		}
	}
}

func TestRoundRobinSkipsDrainingKeepsRotation(t *testing.T) {
	clock := simclock.New()
	var servers []*Server
	for i := 0; i < 3; i++ {
		servers = append(servers, NewServer(fmt.Sprintf("s%d", i), NewNode(clock, RPi4Spec), newWorkApp(t)))
	}
	b := NewBalancer(RoundRobin, servers...)
	pick := func() *Server {
		s, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Full rotation first.
	if pick() != servers[0] || pick() != servers[1] || pick() != servers[2] {
		t.Fatal("initial rotation broken")
	}
	// Drain s1: rotation alternates s0/s2 without skipping either.
	b.SetDraining(servers[1], true)
	got := []*Server{pick(), pick(), pick(), pick()}
	want := []*Server{servers[0], servers[2], servers[0], servers[2]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draining rotation pick %d = %s, want %s", i, got[i].Name, want[i].Name)
		}
	}
	// Un-drain: rotation resumes from the last chosen slot (s2 was the
	// last pick, so s0, then s1 rejoins in order).
	b.SetDraining(servers[1], false)
	if pick() != servers[0] || pick() != servers[1] || pick() != servers[2] {
		t.Fatal("rotation lost position after un-draining")
	}
}

func TestActiveConnsReadableMidFlight(t *testing.T) {
	// The fleet scaler reads connection counts from its own goroutine
	// while requests are in flight; under -race this fails if conns is
	// not atomic.
	clock := simclock.New()
	srv := NewServer("s", NewNode(clock, CloudSpec), newWorkApp(t))
	b := NewBalancer(LeastConnections, srv)
	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = srv.ActiveConns()
				_ = b.TotalConns()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		srv.Handle(workReq("10"), nil2)
	}
	clock.Run()
	close(stop)
	observer.Wait()
	if srv.ActiveConns() != 0 {
		t.Fatalf("conns = %d after drain", srv.ActiveConns())
	}
}

func nil2(*httpapp.Response, time.Duration, error) {}
