// Package vfs provides an in-memory filesystem for the subject services.
//
// The paper identifies file accesses by instrumenting invocations whose
// arguments are file URLs, duplicates the identified files to the edge,
// and wraps them in CRDT-Files. This virtual filesystem stands in for the
// cloud server's disk: it supports the read/write/remove surface the
// services use, snapshot/restore for state isolation, and access logging
// so the dynamic analysis can see which paths a service execution
// touched.
package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotExist is returned when a path has no file.
var ErrNotExist = errors.New("vfs: file does not exist")

// AccessKind distinguishes logged file operations.
type AccessKind int

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
	AccessRemove
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessRemove:
		return "remove"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Access is one logged file operation.
type Access struct {
	Kind AccessKind
	Path string
	Size int
	// Content holds the written bytes for write accesses delivered to
	// mutation hooks (hooks run under the filesystem lock and must not
	// call back into the FS).
	Content []byte
}

// MutationHook observes file writes and removals (not reads). Hooks run
// synchronously; the CRDT-Files wiring uses them to mirror local file
// changes into the replicated store.
type MutationHook func(Access)

// FS is an in-memory filesystem. It is safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	files   map[string][]byte
	log     []Access
	logging bool
	hooks   []MutationHook
	// muted suppresses hooks while remote state is being applied, to
	// avoid echoing inbound synchronization back out.
	muted bool
}

// OnMutation registers a hook for writes and removals.
func (fs *FS) OnMutation(h MutationHook) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hooks = append(fs.hooks, h)
}

// SetMuted toggles hook suppression (used while applying remote state).
func (fs *FS) SetMuted(m bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.muted = m
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string][]byte)}
}

// normalize canonicalizes a path (strips leading "./" and "/").
func normalize(path string) string {
	path = strings.TrimPrefix(path, "./")
	path = strings.TrimPrefix(path, "/")
	return path
}

// Write stores content at path, replacing any existing file.
func (fs *FS) Write(path string, content []byte) error {
	if normalize(path) == "" {
		return fmt.Errorf("vfs: empty path")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := make([]byte, len(content))
	copy(cp, content)
	fs.files[normalize(path)] = cp
	fs.record(Access{Kind: AccessWrite, Path: normalize(path), Size: len(content), Content: cp})
	return nil
}

// Read returns a copy of the file at path.
func (fs *FS) Read(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[normalize(path)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	fs.record(Access{Kind: AccessRead, Path: normalize(path), Size: len(b)})
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, nil
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[normalize(path)]
	return ok
}

// Size returns the length of the file at path.
func (fs *FS) Size(path string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[normalize(path)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return len(b), nil
}

// Remove deletes the file at path.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := normalize(path)
	if _, ok := fs.files[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(fs.files, p)
	fs.record(Access{Kind: AccessRemove, Path: p})
	return nil
}

// List returns all paths, sorted. With a non-empty prefix, only paths
// under that prefix are returned.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := normalize(prefix)
	var out []string
	for path := range fs.files {
		if p == "" || strings.HasPrefix(path, p) {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// Hash returns the hex SHA-256 of the file at path.
func (fs *FS) Hash(path string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.files[normalize(path)]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// TotalBytes returns the summed size of all files.
func (fs *FS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, b := range fs.files {
		n += int64(len(b))
	}
	return n
}

// Snapshot is a point-in-time deep copy of the filesystem contents.
type Snapshot struct {
	files map[string][]byte
}

// Snapshot captures the current contents.
func (fs *FS) Snapshot() *Snapshot {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := &Snapshot{files: make(map[string][]byte, len(fs.files))}
	for p, b := range fs.files {
		cp := make([]byte, len(b))
		copy(cp, b)
		s.files[p] = cp
	}
	return s
}

// Restore replaces the contents with a snapshot.
func (fs *FS) Restore(s *Snapshot) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files = make(map[string][]byte, len(s.files))
	for p, b := range s.files {
		cp := make([]byte, len(b))
		copy(cp, b)
		fs.files[p] = cp
	}
}

// Paths returns the snapshot's paths, sorted.
func (s *Snapshot) Paths() []string {
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ---- Access logging (dynamic analysis support) ----

// StartLogging begins recording file accesses, clearing any prior log.
func (fs *FS) StartLogging() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.logging = true
	fs.log = nil
}

// StopLogging stops recording and returns the accesses observed since
// StartLogging.
func (fs *FS) StopLogging() []Access {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.logging = false
	log := fs.log
	fs.log = nil
	return log
}

func (fs *FS) record(a Access) {
	if fs.logging {
		fs.log = append(fs.log, a)
	}
	if a.Kind != AccessRead && !fs.muted {
		for _, h := range fs.hooks {
			h(a)
		}
	}
}
