package vfs

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriteReadRemove(t *testing.T) {
	fs := New()
	if err := fs.Write("a/b.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	b, err := fs.Read("a/b.txt")
	if err != nil || string(b) != "hi" {
		t.Fatalf("Read = %q, %v", b, err)
	}
	if !fs.Exists("a/b.txt") {
		t.Fatal("Exists = false")
	}
	n, err := fs.Size("a/b.txt")
	if err != nil || n != 2 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := fs.Remove("a/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("a/b.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Read after remove: %v", err)
	}
	if err := fs.Remove("a/b.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double Remove: %v", err)
	}
	if err := fs.Write("", nil); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestPathNormalization(t *testing.T) {
	fs := New()
	if err := fs.Write("./x.txt", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/x.txt") || !fs.Exists("x.txt") {
		t.Fatal("normalized variants not equivalent")
	}
}

func TestReadIsolation(t *testing.T) {
	fs := New()
	orig := []byte("abc")
	if err := fs.Write("f", orig); err != nil {
		t.Fatal(err)
	}
	orig[0] = 'X' // mutate caller copy
	got, _ := fs.Read("f")
	if string(got) != "abc" {
		t.Fatal("Write did not copy content")
	}
	got[0] = 'Y' // mutate returned copy
	again, _ := fs.Read("f")
	if string(again) != "abc" {
		t.Fatal("Read did not copy content")
	}
}

func TestListWithPrefix(t *testing.T) {
	fs := New()
	for _, p := range []string{"m/a", "m/b", "n/c"} {
		if err := fs.Write(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List("m/"); !reflect.DeepEqual(got, []string{"m/a", "m/b"}) {
		t.Fatalf("List(m/) = %v", got)
	}
	if got := fs.List(""); len(got) != 3 {
		t.Fatalf("List() = %v", got)
	}
}

func TestHashAndTotalBytes(t *testing.T) {
	fs := New()
	if err := fs.Write("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Hash("f")
	if err != nil || len(h) != 64 {
		t.Fatalf("Hash = %q, %v", h, err)
	}
	if _, err := fs.Hash("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Hash(missing) = %v", err)
	}
	if fs.TotalBytes() != 5 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestSnapshotRestore(t *testing.T) {
	fs := New()
	if err := fs.Write("keep", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	snap := fs.Snapshot()
	if err := fs.Write("keep", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("new", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.Restore(snap)
	b, _ := fs.Read("keep")
	if string(b) != "v1" {
		t.Fatalf("keep = %q, want v1", b)
	}
	if fs.Exists("new") {
		t.Fatal("restored FS has post-snapshot file")
	}
	if got := snap.Paths(); !reflect.DeepEqual(got, []string{"keep"}) {
		t.Fatalf("snap.Paths = %v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	fs := New()
	if err := fs.Write("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	snap := fs.Snapshot()
	if err := fs.Write("f", []byte("zzz")); err != nil {
		t.Fatal(err)
	}
	fs.Restore(snap)
	b, _ := fs.Read("f")
	if string(b) != "abc" {
		t.Fatal("snapshot shares storage with live FS")
	}
}

func TestAccessLogging(t *testing.T) {
	fs := New()
	if err := fs.Write("before", nil); err != nil {
		t.Fatal(err)
	}
	fs.StartLogging()
	if err := fs.Write("f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	log := fs.StopLogging()
	want := []Access{
		{Kind: AccessWrite, Path: "f", Size: 3, Content: []byte("abc")},
		{Kind: AccessRead, Path: "f", Size: 3},
		{Kind: AccessRemove, Path: "f"},
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	// After StopLogging, accesses are not recorded.
	if err := fs.Write("g", nil); err != nil {
		t.Fatal(err)
	}
	if again := fs.StopLogging(); len(again) != 0 {
		t.Fatalf("post-stop log = %v", again)
	}
}

// Property: snapshot/restore round-trips arbitrary content sets exactly.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	f := func(names []string, blobs [][]byte) bool {
		fs := New()
		for i, name := range names {
			if normalizeOK(name) {
				var content []byte
				if i < len(blobs) {
					content = blobs[i]
				}
				if err := fs.Write(name, content); err != nil {
					return false
				}
			}
		}
		snap := fs.Snapshot()
		wantPaths := fs.List("")
		wantTotal := fs.TotalBytes()
		for _, p := range fs.List("") {
			_ = fs.Remove(p)
		}
		fs.Restore(snap)
		if fs.TotalBytes() != wantTotal {
			return false
		}
		return reflect.DeepEqual(fs.List(""), wantPaths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func normalizeOK(p string) bool { return normalize(p) != "" }

func BenchmarkWriteRead(b *testing.B) {
	fs := New()
	payload := bytes.Repeat([]byte{1}, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fs.Write("bench", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Read("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
