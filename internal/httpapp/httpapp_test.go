package httpapp

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const bookSrc = `
var hits = 0

func init() any {
	db.exec("CREATE TABLE books (id INT PRIMARY KEY, title TEXT, stock INT)")
	db.exec("INSERT INTO books (id, title, stock) VALUES (1, 'SICP', 3), (2, 'TAPL', 1)")
	fs.write("motd.txt", "welcome")
	return nil
}

func listBooks(req any, res any) any {
	hits = hits + 1
	rows := db.query("SELECT * FROM books ORDER BY id")
	res.send(rows)
	return nil
}

func getBook(req any, res any) any {
	id := req.param("id")
	rows := db.query("SELECT * FROM books WHERE id = ?", num(id))
	if len(rows) == 0 {
		res.status(404)
		res.send("not found")
		return nil
	}
	res.send(rows[0])
	return nil
}

func buyBook(req any, res any) any {
	body := req.json()
	id := body["id"]
	db.exec("UPDATE books SET stock = stock - 1 WHERE id = ?", id)
	rows := db.query("SELECT stock FROM books WHERE id = ?", id)
	res.send(rows[0])
	return nil
}

func motd(req any, res any) any {
	res.send(bytes.toString(fs.read("motd.txt")))
	return nil
}

func boom(req any, res any) any {
	return fail("service exploded")
}`

var bookRoutes = []Route{
	{Method: "GET", Path: "/books", Handler: "listBooks"},
	{Method: "GET", Path: "/books/:id", Handler: "getBook"},
	{Method: "POST", Path: "/buy", Handler: "buyBook"},
	{Method: "GET", Path: "/motd", Handler: "motd"},
	{Method: "GET", Path: "/boom", Handler: "boom"},
}

func newBookApp(t *testing.T) *App {
	t.Helper()
	app, err := New("bookworm", bookSrc, bookRoutes)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestInvokeList(t *testing.T) {
	app := newBookApp(t)
	resp, cost, err := app.Invoke(&Request{Method: "GET", Path: "/books"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if cost <= 0 {
		t.Fatalf("cost = %v, want > 0", cost)
	}
	var rows []map[string]any
	if err := json.Unmarshal(resp.Body, &rows); err != nil {
		t.Fatalf("body %q: %v", resp.Body, err)
	}
	if len(rows) != 2 || rows[0]["title"] != "SICP" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPathParams(t *testing.T) {
	app := newBookApp(t)
	resp, _, err := app.Invoke(&Request{Method: "GET", Path: "/books/2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "TAPL") {
		t.Fatalf("body = %s", resp.Body)
	}
	resp, _, err = app.Invoke(&Request{Method: "GET", Path: "/books/99"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestPostJSONBodyMutatesState(t *testing.T) {
	app := newBookApp(t)
	resp, _, err := app.Invoke(&Request{
		Method: "POST", Path: "/buy", Body: []byte(`{"id": 1}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "2") {
		t.Fatalf("body = %s", resp.Body)
	}
	n, err := app.DB().RowCount("books")
	if err != nil || n != 2 {
		t.Fatalf("RowCount = %d, %v", n, err)
	}
}

func TestFilesystemHandler(t *testing.T) {
	app := newBookApp(t)
	resp, _, err := app.Invoke(&Request{Method: "GET", Path: "/motd"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != `"welcome"` {
		t.Fatalf("body = %s", resp.Body)
	}
}

func TestHandlerErrorGives500(t *testing.T) {
	app := newBookApp(t)
	resp, _, err := app.Invoke(&Request{Method: "GET", Path: "/boom"})
	if err == nil {
		t.Fatal("handler error not surfaced")
	}
	if resp.Status != 500 {
		t.Fatalf("status = %d, want 500", resp.Status)
	}
}

func TestNoRoute(t *testing.T) {
	app := newBookApp(t)
	_, _, err := app.Invoke(&Request{Method: "GET", Path: "/nope"})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	_, _, err = app.Invoke(&Request{Method: "DELETE", Path: "/books"})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("method mismatch err = %v, want ErrNoRoute", err)
	}
}

func TestGlobalStatePersistsAcrossInvocations(t *testing.T) {
	app := newBookApp(t)
	for i := 0; i < 3; i++ {
		if _, _, err := app.Invoke(&Request{Method: "GET", Path: "/books"}); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := app.Interp().GetGlobal("hits")
	if v != 3.0 {
		t.Fatalf("hits = %v, want 3", v)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	app := newBookApp(t)
	if _, _, err := app.Invoke(&Request{Method: "POST", Path: "/buy", Body: []byte(`{"id": 1}`)}); err != nil {
		t.Fatal(err)
	}
	clone, err := app.Clone()
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := clone.Invoke(&Request{Method: "GET", Path: "/books/1"})
	if err != nil {
		t.Fatal(err)
	}
	// Clone re-ran init: stock back at 3.
	if !strings.Contains(string(resp.Body), `"stock":3`) {
		t.Fatalf("clone body = %s", resp.Body)
	}
}

func TestUnknownHandlerRejectedAtConstruction(t *testing.T) {
	_, err := New("x", `func f(req any, res any) any { return nil }`, []Route{
		{Method: "GET", Path: "/", Handler: "missing"},
	})
	if err == nil {
		t.Fatal("unknown handler accepted")
	}
}

func TestServeHTTP(t *testing.T) {
	app := newBookApp(t)
	srv := httptest.NewServer(app)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/books/1?verbose=yes")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var row map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	if row["title"] != "SICP" {
		t.Fatalf("row = %v", row)
	}

	nf, err := srv.Client().Get(srv.URL + "/ghost")
	if err != nil {
		t.Fatal(err)
	}
	if err := nf.Body.Close(); err != nil {
		t.Error(err)
	}
	if nf.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", nf.StatusCode)
	}
}

// abortWriter models a client that hangs up before reading the response
// body: headers go through, the body write fails.
type abortWriter struct {
	hdr    http.Header
	status int
}

func (w *abortWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *abortWriter) WriteHeader(code int)      { w.status = code }
func (w *abortWriter) Write([]byte) (int, error) { return 0, errors.New("client hung up") }

func TestServeHTTPWriteErrorCounted(t *testing.T) {
	app := newBookApp(t)
	if got := app.WriteErrors(); got != 0 {
		t.Fatalf("fresh app WriteErrors = %d", got)
	}

	w := &abortWriter{}
	app.ServeHTTP(w, httptest.NewRequest("GET", "/books/1", nil))
	if w.status != 200 {
		t.Fatalf("handler status = %d, want 200", w.status)
	}
	if got := app.WriteErrors(); got != 1 {
		t.Fatalf("WriteErrors after aborted write = %d, want 1", got)
	}

	// A successful write does not count.
	rec := httptest.NewRecorder()
	app.ServeHTTP(rec, httptest.NewRequest("GET", "/books/1", nil))
	if rec.Code != 200 {
		t.Fatalf("recorder status = %d", rec.Code)
	}
	if got := app.WriteErrors(); got != 1 {
		t.Fatalf("WriteErrors after clean write = %d, want 1", got)
	}
}

func TestRequestSizeAndClone(t *testing.T) {
	req := &Request{Method: "POST", Path: "/x", Query: map[string]string{"a": "b"}, Body: []byte("123")}
	if req.Size() <= 0 {
		t.Fatal("Size = 0")
	}
	cp := req.Clone()
	cp.Body[0] = 'X'
	cp.Query["a"] = "z"
	if req.Body[0] != '1' || req.Query["a"] != "b" {
		t.Fatal("Clone shares state")
	}
}

func TestMatchPath(t *testing.T) {
	tests := []struct {
		pattern, path string
		ok            bool
		params        map[string]string
	}{
		{"/books", "/books", true, map[string]string{}},
		{"/books/:id", "/books/7", true, map[string]string{"id": "7"}},
		{"/a/:x/b/:y", "/a/1/b/2", true, map[string]string{"x": "1", "y": "2"}},
		{"/books/:id", "/books", false, nil},
		{"/books", "/movies", false, nil},
	}
	for _, tt := range tests {
		params, ok := matchPath(tt.pattern, tt.path)
		if ok != tt.ok {
			t.Fatalf("matchPath(%q, %q) ok = %v", tt.pattern, tt.path, ok)
		}
		if ok {
			for k, v := range tt.params {
				if params[k] != v {
					t.Fatalf("param %q = %q, want %q", k, params[k], v)
				}
			}
		}
	}
}

func BenchmarkInvoke(b *testing.B) {
	app, err := New("bookworm", bookSrc, bookRoutes)
	if err != nil {
		b.Fatal(err)
	}
	req := &Request{Method: "GET", Path: "/books"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := app.Invoke(req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRequestObjectSurface(t *testing.T) {
	src := `
func echo(req any, res any) any {
	tv := map[string]any{
		"method": req.method(),
		"path":   req.path(),
		"q":      req.query(),
		"text":   req.text(),
	}
	res.send(tv)
	return nil
}`
	app, err := New("e", src, []Route{{Method: "POST", Path: "/echo", Handler: "echo"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := app.Invoke(&Request{
		Method: "POST", Path: "/echo",
		Query: map[string]string{"a": "1"},
		Body:  []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(resp.Body, &got); err != nil {
		t.Fatal(err)
	}
	if got["method"] != "POST" || got["path"] != "/echo" || got["text"] != "hello" {
		t.Fatalf("got = %v", got)
	}
	if q, ok := got["q"].(map[string]any); !ok || q["a"] != "1" {
		t.Fatalf("q = %v", got["q"])
	}
}

func TestBadJSONBodyErrors(t *testing.T) {
	src := `
func f(req any, res any) any {
	res.send(req.json())
	return nil
}`
	app, err := New("j", src, []Route{{Method: "POST", Path: "/f", Handler: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := app.Invoke(&Request{Method: "POST", Path: "/f", Body: []byte("{broken")})
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if resp.Status != 500 {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestSendBytesRaw(t *testing.T) {
	src := `
func f(req any, res any) any {
	res.sendBytes(bytes.fromString("raw-payload"))
	return nil
}
func g(req any, res any) any {
	res.sendBytes("not bytes")
	return nil
}`
	app, err := New("b", src, []Route{
		{Method: "GET", Path: "/f", Handler: "f"},
		{Method: "GET", Path: "/g", Handler: "g"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := app.Invoke(&Request{Method: "GET", Path: "/f"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "raw-payload" {
		t.Fatalf("body = %q (sendBytes must skip JSON encoding)", resp.Body)
	}
	if _, _, err := app.Invoke(&Request{Method: "GET", Path: "/g"}); err == nil {
		t.Fatal("sendBytes of non-bytes accepted")
	}
}

func TestFSListBuiltin(t *testing.T) {
	src := `
func init() any {
	fs.write("a/1.txt", "x")
	fs.write("a/2.txt", "y")
	fs.write("b/3.txt", "z")
	return nil
}
func f(req any, res any) any {
	res.send(fs.list("a/"))
	return nil
}`
	app, err := New("l", src, []Route{{Method: "GET", Path: "/f", Handler: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := app.Invoke(&Request{Method: "GET", Path: "/f"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != `["a/1.txt","a/2.txt"]` {
		t.Fatalf("body = %s", resp.Body)
	}
}

func TestDBErrorPropagatesToHandler(t *testing.T) {
	src := `
func f(req any, res any) any {
	res.send(db.query("SELECT * FROM missing_table"))
	return nil
}`
	app, err := New("d", src, []Route{{Method: "GET", Path: "/f", Handler: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.Invoke(&Request{Method: "GET", Path: "/f"}); err == nil {
		t.Fatal("SQL error did not propagate")
	}
}

func TestInitFailureRejectsApp(t *testing.T) {
	src := `
func init() any {
	return fail("boom at init")
}
func f(req any, res any) any { res.send(1); return nil }`
	if _, err := New("bad", src, []Route{{Method: "GET", Path: "/f", Handler: "f"}}); err == nil {
		t.Fatal("app with failing init accepted")
	}
	if _, err := New("unparsable", "func {", nil); err == nil {
		t.Fatal("unparsable source accepted")
	}
}
