// Package httpapp is a small Express-like framework for services written
// in the script dialect. A service App binds HTTP routes (verb + path
// pattern) to script handler functions and provides the native objects
// the paper's Node.js services rely on: req/res for unmarshaling and
// marshaling, db for SQL state, and fs for file state.
//
// Apps can be driven two ways: in-process via Invoke (used by the
// simulator and by the EdgStr analysis pipeline) and over real HTTP via
// ServeHTTP (used by the live traffic-capture step).
package httpapp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/script"
	"repro/internal/sqldb"
	"repro/internal/vfs"
)

// ErrNoRoute is returned when no route matches a request.
var ErrNoRoute = errors.New("httpapp: no matching route")

// ErrWriteGuard is script.ErrWriteGuard re-exported: an InvokeRead
// error wraps it when the handler attempted a shared-state write, and
// the caller must re-run the request through Invoke.
var ErrWriteGuard = script.ErrWriteGuard

// Route binds an HTTP method and path pattern to a script function.
// Path patterns support ":name" parameter segments ("/books/:id").
type Route struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	// Handler names the script function invoked as handler(req, res).
	Handler string `json:"handler"`
}

// String renders "GET /path".
func (r Route) String() string { return r.Method + " " + r.Path }

// Request is an in-process HTTP request.
type Request struct {
	Method string
	Path   string
	// Query holds query/form parameters.
	Query map[string]string
	// Body is the raw request payload.
	Body []byte
}

// Size returns the request's approximate wire size in bytes.
func (r *Request) Size() int {
	n := len(r.Method) + len(r.Path) + len(r.Body)
	for k, v := range r.Query {
		n += len(k) + len(v) + 2
	}
	return n
}

// Clone returns an independent copy of the request.
func (r *Request) Clone() *Request {
	cp := &Request{Method: r.Method, Path: r.Path, Query: make(map[string]string, len(r.Query))}
	for k, v := range r.Query {
		cp.Query[k] = v
	}
	cp.Body = append([]byte(nil), r.Body...)
	return cp
}

// Response is an in-process HTTP response.
type Response struct {
	Status int
	// Body is the marshaled payload (JSON encoding of Value, or raw
	// bytes for SendBytes).
	Body []byte
	// Value is the script value passed to res.send, before marshaling.
	Value any
}

// Size returns the response's approximate wire size in bytes.
func (r *Response) Size() int { return len(r.Body) }

// App is one service instance: a script program with its routes and
// native state (database, filesystem). Mutating handler invocations are
// serialized, mirroring the single-threaded Node.js event loop;
// invocations classified as read-only may run concurrently through
// InvokeRead, which holds the app lock in shared mode.
type App struct {
	name   string
	source string
	routes []Route

	mu     sync.RWMutex
	prog   *script.Program
	interp *script.Interp
	db     *sqldb.DB
	fs     *vfs.FS

	// readOnly is the analysis-derived per-route classification keyed by
	// Route.String(); staticReadOnly is the construction-time fallback
	// derived from the program text. Both are written before serving
	// starts and read-only afterwards.
	readOnly       map[string]bool
	staticReadOnly map[string]bool

	// readers pools write-guarded reader forks for InvokeRead.
	readerMu sync.Mutex
	readers  []*script.Interp

	// writeErrors counts ServeHTTP responses whose body write failed
	// (typically a client that hung up before reading) — those requests
	// executed but were never actually served.
	writeErrors atomic.Int64
}

// WriteErrors reports how many ServeHTTP response bodies failed to reach
// the client.
func (a *App) WriteErrors() int64 { return a.writeErrors.Load() }

// Option configures an App.
type Option func(*App)

// WithDB installs an existing database instead of a fresh one.
func WithDB(db *sqldb.DB) Option { return func(a *App) { a.db = db } }

// WithFS installs an existing filesystem instead of a fresh one.
func WithFS(fs *vfs.FS) Option { return func(a *App) { a.fs = fs } }

// New parses source, installs the native objects, and evaluates the
// app's init step (global declarations, then the optional init()
// function, which typically creates tables and seeds files).
func New(name, source string, routes []Route, opts ...Option) (*App, error) {
	prog, err := script.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("httpapp %q: %w", name, err)
	}
	for _, rt := range routes {
		if _, ok := prog.Funcs[rt.Handler]; !ok {
			return nil, fmt.Errorf("httpapp %q: route %s names unknown handler %q", name, rt, rt.Handler)
		}
	}
	a := &App{name: name, source: source, routes: append([]Route(nil), routes...), prog: prog}
	for _, opt := range opts {
		opt(a)
	}
	if a.db == nil {
		a.db = sqldb.Open()
	}
	if a.fs == nil {
		a.fs = vfs.New()
	}
	a.interp = script.New(prog)
	a.interp.Register("db", DBObject(a.db))
	a.interp.Register("fs", FSObject(a.fs))
	if err := a.interp.RunInit(); err != nil {
		return nil, fmt.Errorf("httpapp %q: init: %w", name, err)
	}
	if _, ok := prog.Funcs["init"]; ok {
		if _, err := a.interp.Call("init"); err != nil {
			return nil, fmt.Errorf("httpapp %q: init(): %w", name, err)
		}
	}
	a.staticReadOnly = classifyRoutes(prog, a.routes)
	return a, nil
}

// Name returns the app's name.
func (a *App) Name() string { return a.name }

// Source returns the script source.
func (a *App) Source() string { return a.source }

// Routes returns the app's routes.
func (a *App) Routes() []Route { return append([]Route(nil), a.routes...) }

// Program returns the parsed program.
func (a *App) Program() *script.Program { return a.prog }

// Interp exposes the interpreter (for analysis hooks and state capture).
// Callers must not invoke it concurrently with Invoke.
func (a *App) Interp() *script.Interp { return a.interp }

// DB returns the app's database.
func (a *App) DB() *sqldb.DB { return a.db }

// FS returns the app's filesystem.
func (a *App) FS() *vfs.FS { return a.fs }

// Clone builds a fresh instance of the same app (own interpreter, own
// database, own filesystem), re-running initialization — the starting
// point for an edge replica before state is loaded into it.
func (a *App) Clone() (*App, error) {
	return New(a.name, a.source, a.routes)
}

// Lookup finds the route matching method and path and returns it with
// any extracted path parameters.
func (a *App) Lookup(method, path string) (Route, map[string]string, error) {
	for _, rt := range a.routes {
		if !strings.EqualFold(rt.Method, method) {
			continue
		}
		if params, ok := matchPath(rt.Path, path); ok {
			return rt, params, nil
		}
	}
	return Route{}, nil, fmt.Errorf("%w: %s %s", ErrNoRoute, method, path)
}

// matchPath matches a ":param" pattern against a concrete path.
func matchPath(pattern, path string) (map[string]string, bool) {
	ps := strings.Split(strings.Trim(pattern, "/"), "/")
	xs := strings.Split(strings.Trim(path, "/"), "/")
	if len(ps) != len(xs) {
		return nil, false
	}
	params := map[string]string{}
	for i := range ps {
		if strings.HasPrefix(ps[i], ":") {
			params[ps[i][1:]] = xs[i]
			continue
		}
		if ps[i] != xs[i] {
			return nil, false
		}
	}
	return params, true
}

// Invoke dispatches an in-process request to the matching handler and
// returns the response along with the metered compute cost of the
// execution (in abstract ops). Handler script errors surface as the
// returned error with a 500 response, which is what lets edge replicas
// detect failures and forward them to the cloud master.
func (a *App) Invoke(req *Request) (*Response, float64, error) {
	rt, params, err := a.Lookup(req.Method, req.Path)
	if err != nil {
		return &Response{Status: http.StatusNotFound}, 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	resp := &Response{Status: http.StatusOK}
	reqObj := requestObject(req, params)
	resObj := responseObject(resp)

	before := a.interp.Meter().Ops()
	_, err = a.interp.Call(rt.Handler, reqObj, resObj)
	cost := a.interp.Meter().Ops() - before
	if err != nil {
		return &Response{Status: http.StatusInternalServerError}, cost, fmt.Errorf("httpapp %q: %s: %w", a.name, rt, err)
	}
	if resp.Body == nil && resp.Value != nil {
		if err := marshalValue(resp); err != nil {
			return &Response{Status: http.StatusInternalServerError}, cost, err
		}
	}
	return resp, cost, nil
}

// InvokeRead dispatches a request that analysis classified as read-only.
// It holds the app lock in shared mode, so any number of InvokeRead
// calls proceed concurrently with each other (but never with Invoke),
// each on a pooled write-guarded interpreter fork. If the handler turns
// out to mutate shared state after all, the fork aborts before the
// write lands and the returned error wraps ErrWriteGuard — the caller
// re-runs the request through Invoke.
func (a *App) InvokeRead(req *Request) (*Response, float64, error) {
	rt, params, err := a.Lookup(req.Method, req.Path)
	if err != nil {
		return &Response{Status: http.StatusNotFound}, 0, err
	}
	a.mu.RLock()
	defer a.mu.RUnlock()

	in := a.acquireReader()
	resp := &Response{Status: http.StatusOK}
	before := in.Meter().Ops()
	_, err = in.Call(rt.Handler, requestObject(req, params), responseObject(resp))
	cost := in.Meter().Ops() - before
	a.releaseReader(in)
	if err != nil {
		return &Response{Status: http.StatusInternalServerError}, cost, fmt.Errorf("httpapp %q: %s: %w", a.name, rt, err)
	}
	if resp.Body == nil && resp.Value != nil {
		if err := marshalValue(resp); err != nil {
			return &Response{Status: http.StatusInternalServerError}, cost, err
		}
	}
	return resp, cost, nil
}

// acquireReader pops a pooled reader fork, minting one when the pool is
// empty. Forking is safe here because callers hold a.mu (shared or
// exclusive), which excludes concurrent global definition.
func (a *App) acquireReader() *script.Interp {
	a.readerMu.Lock()
	if n := len(a.readers); n > 0 {
		in := a.readers[n-1]
		a.readers = a.readers[:n-1]
		a.readerMu.Unlock()
		return in
	}
	a.readerMu.Unlock()
	return a.interp.ReadOnlyFork()
}

func (a *App) releaseReader(in *script.Interp) {
	a.readerMu.Lock()
	a.readers = append(a.readers, in)
	a.readerMu.Unlock()
}

// SetReadOnlyRoutes installs the analysis-derived route classification
// (keyed by Route.String()), overriding the static fallback computed at
// construction. Call before serving starts.
func (a *App) SetReadOnlyRoutes(ro map[string]bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.readOnly = ro
}

// RequestReadOnly reports whether req resolves to a route classified as
// read-only, i.e. safe for InvokeRead. Unroutable requests report false.
func (a *App) RequestReadOnly(req *Request) bool {
	rt, _, err := a.Lookup(req.Method, req.Path)
	if err != nil {
		return false
	}
	return a.routeReadOnly(rt)
}

func (a *App) routeReadOnly(rt Route) bool {
	if a.readOnly != nil {
		if ro, ok := a.readOnly[rt.String()]; ok {
			return ro
		}
	}
	return a.staticReadOnly[rt.String()]
}

// ReadOnlyRoutes returns the effective classification for every route.
func (a *App) ReadOnlyRoutes() map[string]bool {
	out := make(map[string]bool, len(a.routes))
	for _, rt := range a.routes {
		out[rt.String()] = a.routeReadOnly(rt)
	}
	return out
}

func marshalValue(resp *Response) error {
	b, err := json.Marshal(script.ToJSONValue(resp.Value))
	if err != nil {
		return fmt.Errorf("httpapp: marshaling response: %w", err)
	}
	resp.Body = b
	return nil
}

// requestObject builds the script-visible req object. Its methods are
// the unmarshaling points the analysis identifies as service entry
// points.
func requestObject(req *Request, params map[string]string) *script.Object {
	return script.NewObject("req", map[string]script.Builtin{
		"method": func(c *script.Call) (any, error) { return req.Method, nil },
		"path":   func(c *script.Call) (any, error) { return req.Path, nil },
		"param": func(c *script.Call) (any, error) {
			name := c.StringArg(0)
			if v, ok := params[name]; ok {
				return v, nil
			}
			if v, ok := req.Query[name]; ok {
				return v, nil
			}
			return nil, nil
		},
		"query": func(c *script.Call) (any, error) {
			m := make(map[string]any, len(req.Query))
			for k, v := range req.Query {
				m[k] = v
			}
			return m, nil
		},
		"body": func(c *script.Call) (any, error) {
			return append([]byte(nil), req.Body...), nil
		},
		"text": func(c *script.Call) (any, error) { return string(req.Body), nil },
		"json": func(c *script.Call) (any, error) {
			var v any
			if err := json.Unmarshal(req.Body, &v); err != nil {
				return nil, fmt.Errorf("req.json: %w", err)
			}
			return script.FromJSONValue(v), nil
		},
	})
}

// responseObject builds the script-visible res object. Its send methods
// are the marshaling points the analysis identifies as service exit
// points.
func responseObject(resp *Response) *script.Object {
	return script.NewObject("res", map[string]script.Builtin{
		"status": func(c *script.Call) (any, error) {
			resp.Status = int(c.NumArg(0))
			return nil, nil
		},
		"send": func(c *script.Call) (any, error) {
			resp.Value = c.Arg(0)
			return nil, marshalValue(resp)
		},
		"sendBytes": func(c *script.Call) (any, error) {
			b, ok := c.Arg(0).([]byte)
			if !ok {
				return nil, fmt.Errorf("res.sendBytes: argument must be bytes, got %T", c.Arg(0))
			}
			resp.Value = b
			resp.Body = append([]byte(nil), b...)
			return nil, nil
		},
	})
}

// DBObject wraps a database as the script-visible db object.
func DBObject(db *sqldb.DB) *script.Object {
	return script.NewObject("db", map[string]script.Builtin{
		// exec runs any SQL statement; SELECT returns a list of row maps.
		"exec": func(c *script.Call) (any, error) {
			return dbExec(db, c)
		},
		"query": func(c *script.Call) (any, error) {
			return dbExec(db, c)
		},
	})
}

func dbExec(db *sqldb.DB, c *script.Call) (any, error) {
	q := c.StringArg(0)
	args := make([]any, 0, len(c.Args)-1)
	for _, a := range c.Args[1:] {
		args = append(args, a)
	}
	var res *sqldb.Result
	var err error
	if c.Interp.WriteGuarded() {
		res, err = db.ExecReadOnly(q, args...)
		if errors.Is(err, sqldb.ErrMutation) {
			return nil, fmt.Errorf("%w: %v", script.ErrWriteGuard, err)
		}
	} else {
		res, err = db.Exec(q, args...)
	}
	if err != nil {
		return nil, err
	}
	if res.Cols == nil {
		// Non-SELECT statements return their affected-row count.
		return float64(res.Affected), nil
	}
	lst := script.NewList()
	for _, row := range res.Rows {
		m := make(map[string]any, len(row))
		for k, v := range row {
			m[k] = dbToScript(v)
		}
		lst.Elems = append(lst.Elems, m)
	}
	return lst, nil
}

func dbToScript(v any) any {
	switch x := v.(type) {
	case int64:
		return float64(x)
	default:
		return x
	}
}

// FSObject wraps a filesystem as the script-visible fs object.
func FSObject(fs *vfs.FS) *script.Object {
	return script.NewObject("fs", map[string]script.Builtin{
		"read": func(c *script.Call) (any, error) {
			return fs.Read(c.StringArg(0))
		},
		"write": func(c *script.Call) (any, error) {
			if c.Interp.WriteGuarded() {
				return nil, fmt.Errorf("%w: fs.write", script.ErrWriteGuard)
			}
			content, ok := c.Arg(1).([]byte)
			if !ok {
				content = []byte(c.StringArg(1))
			}
			return nil, fs.Write(c.StringArg(0), content)
		},
		"exists": func(c *script.Call) (any, error) {
			return fs.Exists(c.StringArg(0)), nil
		},
		"remove": func(c *script.Call) (any, error) {
			if c.Interp.WriteGuarded() {
				return nil, fmt.Errorf("%w: fs.remove", script.ErrWriteGuard)
			}
			return nil, fs.Remove(c.StringArg(0))
		},
		"list": func(c *script.Call) (any, error) {
			paths := fs.List(c.StringArg(0))
			lst := script.NewList()
			for _, p := range paths {
				lst.Elems = append(lst.Elems, p)
			}
			return lst, nil
		},
	})
}

// ServeHTTP adapts the app to net/http so live traffic can be captured
// by a recording proxy.
func (a *App) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req := &Request{
		Method: r.Method,
		Path:   r.URL.Path,
		Query:  flattenQuery(r.URL.Query()),
		Body:   body,
	}
	resp, _, err := a.Invoke(req)
	if err != nil {
		if errors.Is(err, ErrNoRoute) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	if n, err := w.Write(resp.Body); err != nil || n < len(resp.Body) {
		// An aborted client connection is not a served response; count it
		// so serve-path metrics stay truthful.
		a.writeErrors.Add(1)
	}
}

func flattenQuery(q url.Values) map[string]string {
	m := make(map[string]string, len(q))
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if vs := q[k]; len(vs) > 0 {
			m[k] = vs[0]
		}
	}
	return m
}
