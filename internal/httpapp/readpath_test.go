package httpapp

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

const readPathSrc = `
var hits = 0
var notes = map[string]any{"seed": "x"}

func init() any {
	db.exec("CREATE TABLE logs (id INT, msg TEXT)")
	db.exec("INSERT INTO logs (id, msg) VALUES (?, ?)", 1, "hello")
	fs.write("/cfg", "v1")
	return nil
}

func getLogs(req any, res any) any {
	rows := db.query("SELECT id, msg FROM logs")
	res.send(map[string]any{"rows": rows, "hits": hits})
	return nil
}

func addLog(req any, res any) any {
	hits = hits + 1
	db.exec("INSERT INTO logs (id, msg) VALUES (?, ?)", hits+1, req.param("msg"))
	res.send(map[string]any{"hits": hits})
	return nil
}

func maybeWrite(req any, res any) any {
	if req.param("mode") == "write" {
		hits = hits + 1
	}
	res.send(map[string]any{"hits": hits})
	return nil
}

func readCfg(req any, res any) any {
	res.send(map[string]any{"cfg": bytes.toString(fs.read("/cfg"))})
	return nil
}

func writeCfg(req any, res any) any {
	fs.write("/cfg", req.param("v"))
	res.send("ok")
	return nil
}

func dynamicSQL(req any, res any) any {
	q := "SELECT id FROM " + req.param("t")
	res.send(db.query(q))
	return nil
}

func viaHelper(req any, res any) any {
	res.send(helper(2))
	return nil
}

func helper(n any) any {
	if n <= 0 {
		return 0
	}
	return n + helper(n-1)
}
`

var readPathRoutes = []Route{
	{Method: "GET", Path: "/logs", Handler: "getLogs"},
	{Method: "POST", Path: "/logs", Handler: "addLog"},
	{Method: "GET", Path: "/maybe", Handler: "maybeWrite"},
	{Method: "GET", Path: "/cfg", Handler: "readCfg"},
	{Method: "POST", Path: "/cfg", Handler: "writeCfg"},
	{Method: "GET", Path: "/dyn", Handler: "dynamicSQL"},
	{Method: "GET", Path: "/helper", Handler: "viaHelper"},
}

func newReadPathApp(t *testing.T) *App {
	t.Helper()
	app, err := New("readpath", readPathSrc, readPathRoutes)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestStaticClassifier(t *testing.T) {
	app := newReadPathApp(t)
	want := map[string]bool{
		"GET /logs":   true,  // literal SELECT + global read
		"POST /logs":  false, // global write + INSERT
		"GET /maybe":  false, // conditional global write
		"GET /cfg":    true,  // fs.read only
		"POST /cfg":   false, // fs.write
		"GET /dyn":    false, // dynamically built SQL
		"GET /helper": true,  // pure transitive callee
	}
	got := app.ReadOnlyRoutes()
	for k, w := range want {
		if got[k] != w {
			t.Errorf("route %s classified %v, want %v", k, got[k], w)
		}
	}
}

func TestInvokeReadMatchesInvoke(t *testing.T) {
	appA := newReadPathApp(t)
	appB := newReadPathApp(t)
	req := &Request{Method: "GET", Path: "/logs"}
	r1, c1, err1 := appA.Invoke(req.Clone())
	r2, c2, err2 := appB.InvokeRead(req.Clone())
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v / %v", err1, err2)
	}
	if !bytes.Equal(r1.Body, r2.Body) || r1.Status != r2.Status {
		t.Fatalf("responses diverge: %s vs %s", r1.Body, r2.Body)
	}
	if c1 != c2 {
		t.Fatalf("metered cost diverges: %v vs %v", c1, c2)
	}
}

func TestInvokeReadGuardsMutations(t *testing.T) {
	app := newReadPathApp(t)
	for _, path := range []struct {
		method, path string
		query        map[string]string
	}{
		{"POST", "/logs", map[string]string{"msg": "x"}},
		{"GET", "/maybe", map[string]string{"mode": "write"}},
		{"POST", "/cfg", map[string]string{"v": "v2"}},
	} {
		req := &Request{Method: path.method, Path: path.path, Query: path.query}
		_, _, err := app.InvokeRead(req)
		if !errors.Is(err, ErrWriteGuard) {
			t.Errorf("%s %s: err = %v, want ErrWriteGuard", path.method, path.path, err)
		}
	}
	// Aborted reads left no trace: the logs table and hits are pristine.
	resp, _, err := app.Invoke(&Request{Method: "GET", Path: "/logs"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"hits":0,"rows":[{"id":1,"msg":"hello"}]}`
	if string(resp.Body) != want {
		t.Fatalf("state after guarded aborts: %s, want %s", resp.Body, want)
	}
}

func TestInvokeReadGuardedNonWrite(t *testing.T) {
	// The conditional-write handler on its read path stays on the fork.
	app := newReadPathApp(t)
	resp, _, err := app.InvokeRead(&Request{Method: "GET", Path: "/maybe"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != `{"hits":0}` {
		t.Fatalf("body = %s", resp.Body)
	}
}

func TestSetReadOnlyRoutesOverridesStatic(t *testing.T) {
	app := newReadPathApp(t)
	app.SetReadOnlyRoutes(map[string]bool{"GET /logs": false, "GET /dyn": true})
	if app.RequestReadOnly(&Request{Method: "GET", Path: "/logs"}) {
		t.Fatal("override to mutating ignored")
	}
	if !app.RequestReadOnly(&Request{Method: "GET", Path: "/dyn"}) {
		t.Fatal("override to read-only ignored")
	}
	// Routes absent from the override keep the static verdict.
	if !app.RequestReadOnly(&Request{Method: "GET", Path: "/cfg"}) {
		t.Fatal("static fallback lost")
	}
}

func TestConcurrentInvokeRead(t *testing.T) {
	app := newReadPathApp(t)
	want, _, err := app.Invoke(&Request{Method: "GET", Path: "/logs"})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				resp, _, err := app.InvokeRead(&Request{Method: "GET", Path: "/logs"})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Body, want.Body) {
					errs <- errors.New("read diverged: " + string(resp.Body))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
