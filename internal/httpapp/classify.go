package httpapp

// classify.go statically classifies routes as read-only or mutating by
// walking each handler and its transitive callees. The classifier is
// the construction-time fallback for the analysis pipeline's dynamic
// classification (SetReadOnlyRoutes): it must never mark a mutating
// route read-only on its own reasoning alone, but it does not have to
// be sound either — a misclassified route is caught at runtime by the
// interpreter's write guard and re-run serialized. The rules therefore
// lean conservative (unknown calls and non-literal SQL are mutating)
// while accepting that aliasing through locals is left to the guard.

import (
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/script"
	"repro/internal/sqldb"
)

// pureBuiltins are stdlib functions that never touch shared state.
var pureBuiltins = map[string]bool{
	"len": true, "keys": true, "has": true, "str": true, "num": true,
	"abs": true, "floor": true, "ceil": true, "round": true, "sqrt": true,
	"min": true, "max": true, "pow": true, "fail": true, "cpu": true,
}

// pureObjects are native objects whose methods never mutate app state:
// req/res touch only the per-invocation request and response, and
// strings/json/bytes are pure value transforms.
var pureObjects = map[string]bool{
	"req": true, "res": true, "strings": true, "json": true, "bytes": true,
}

// classifyRoutes returns the set of routes (keyed by Route.String())
// whose handlers provably avoid shared-state writes.
func classifyRoutes(prog *script.Program, routes []Route) map[string]bool {
	cl := &classifier{
		prog:    prog,
		globals: map[string]bool{},
		memo:    map[string]bool{},
	}
	for _, g := range prog.GlobalNames() {
		cl.globals[g] = true
	}
	out := make(map[string]bool, len(routes))
	for _, rt := range routes {
		out[rt.String()] = !cl.funcMutates(rt.Handler)
	}
	return out
}

type classifier struct {
	prog    *script.Program
	globals map[string]bool
	// memo caches per-function verdicts; a function currently on the
	// walk stack is entered as false (non-mutating) to break cycles —
	// the final verdict overwrites it, and any mutation found on the
	// cycle still taints every caller on the stack.
	memo map[string]bool
}

// funcMutates reports whether the named script function (or anything it
// calls) may write shared state.
func (cl *classifier) funcMutates(name string) bool {
	if v, ok := cl.memo[name]; ok {
		return v
	}
	fn, ok := cl.prog.Funcs[name]
	if !ok {
		// Unknown callee: conservatively mutating.
		return true
	}
	cl.memo[name] = false
	mutates := cl.nodeMutates(fn.Body)
	cl.memo[name] = mutates
	return mutates
}

// nodeMutates walks one subtree for mutation evidence.
func (cl *classifier) nodeMutates(root ast.Node) bool {
	mutates := false
	ast.Inspect(root, func(n ast.Node) bool {
		if mutates {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			// := creates locals (possibly shadowing a global name); flag
			// it anyway — spurious serialization is harmless, and the
			// interpreter's write hooks record the same base names.
			for _, lhs := range x.Lhs {
				if cl.globals[rootName(lhs)] {
					mutates = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if cl.globals[rootName(x.X)] {
				mutates = true
				return false
			}
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if cl.globals[rootName(x.Key)] || cl.globals[rootName(x.Value)] {
					mutates = true
					return false
				}
			}
		case *ast.CallExpr:
			if cl.callMutates(x) {
				mutates = true
				return false
			}
		}
		return true
	})
	return mutates
}

// callMutates applies the per-call rules.
func (cl *classifier) callMutates(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		switch fn.Name {
		case "push", "pop", "del":
			if len(call.Args) == 0 {
				return true
			}
			// Mutating when the container is a global, or anything but a
			// plain local identifier (locals aliasing globals are caught
			// at runtime by the write guard).
			arg, ok := call.Args[0].(*ast.Ident)
			return !ok || cl.globals[arg.Name]
		default:
			if pureBuiltins[fn.Name] {
				return false
			}
			return cl.funcMutates(fn.Name)
		}
	case *ast.SelectorExpr:
		obj, ok := fn.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch obj.Name {
		case "db":
			return !readOnlySQLCall(call)
		case "fs":
			switch fn.Sel.Name {
			case "read", "exists", "list":
				return false
			}
			return true
		default:
			return !pureObjects[obj.Name]
		}
	default:
		return true
	}
}

// readOnlySQLCall reports whether a db.exec/db.query call's statement is
// a string literal that parses as a SELECT. Dynamically built SQL is
// never read-only here: its text is unknowable statically.
func readOnlySQLCall(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	q, err := strconv.Unquote(lit.Value)
	if err != nil {
		return false
	}
	return sqldb.IsReadOnlyQuery(q)
}

// rootName unwraps index/selector/paren chains to the base identifier
// ("m" for m["k"].x), or "" when the root is not an identifier.
func rootName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}
