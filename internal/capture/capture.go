// Package capture implements EdgStr's first stage: instrumenting live
// HTTP traffic between a client and a cloud service to recover the
// Subject access interface (Eq. 1 in the paper),
//
//	S = [s_1(p_1) … s_N(p_N)] = [r_1 … r_N],
//
// and generating the fuzzed message variants — tracked by a fuzz
// dictionary — that the dynamic analysis later uses to locate the
// unmarshaling (entry) and marshaling (exit) statements of each service.
package capture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/httpapp"
)

// Record is one observed request/response exchange.
type Record struct {
	Method   string
	Path     string
	Query    map[string]string
	ReqBody  []byte
	Status   int
	RespBody []byte
	Latency  time.Duration
}

// ReqSize returns the request's wire size.
func (r *Record) ReqSize() int {
	n := len(r.Method) + len(r.Path) + len(r.ReqBody)
	for k, v := range r.Query {
		n += len(k) + len(v) + 2
	}
	return n
}

// RespSize returns the response's wire size.
func (r *Record) RespSize() int { return len(r.RespBody) }

// Log accumulates captured traffic. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	records []Record
}

// NewLog returns an empty traffic log.
func NewLog() *Log { return &Log{} }

// Add appends a record.
func (l *Log) Add(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, r)
}

// Records returns a copy of the captured records.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Len returns the number of captured records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Middleware wraps an http.Handler so every exchange through it is
// recorded — the packet-level sniffer of the paper, attached after TLS
// termination.
func (l *Log) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		rw := &recordingWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rw, r)
		q := map[string]string{}
		for k, vs := range r.URL.Query() {
			if len(vs) > 0 {
				q[k] = vs[0]
			}
		}
		l.Add(Record{
			Method:   r.Method,
			Path:     r.URL.Path,
			Query:    q,
			ReqBody:  body,
			Status:   rw.status,
			RespBody: rw.buf.Bytes(),
			Latency:  time.Since(start),
		})
	})
}

type recordingWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (w *recordingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *recordingWriter) Write(b []byte) (int, error) {
	w.buf.Write(b)
	return w.ResponseWriter.Write(b)
}

// InvokeRecorded drives an app in-process while recording the exchange —
// the same observation point as Middleware without a network hop.
func (l *Log) InvokeRecorded(app *httpapp.App, req *httpapp.Request) (*httpapp.Response, error) {
	start := time.Now()
	resp, _, err := app.Invoke(req)
	rec := Record{
		Method:  req.Method,
		Path:    req.Path,
		Query:   req.Query,
		ReqBody: req.Body,
		Latency: time.Since(start),
	}
	if resp != nil {
		rec.Status = resp.Status
		rec.RespBody = resp.Body
	}
	l.Add(rec)
	return resp, err
}

// Service is one inferred remote service s_i of the Subject interface:
// an HTTP method with a path pattern, plus the sample exchanges observed
// for it.
type Service struct {
	Method  string
	Pattern string // path with ":pN" parameter segments
	Samples []Record
}

// Name renders "GET /books/:p1".
func (s Service) Name() string { return s.Method + " " + s.Pattern }

// InferSubject reconstructs the Subject interface from captured traffic.
// Records are grouped by method, segment count, and leading segment;
// path positions whose observed values vary become parameter segments.
// Only successful exchanges with non-empty responses participate, per
// the paper's assumption of non-empty responses.
func InferSubject(records []Record) []Service {
	type groupKey struct {
		method string
		nseg   int
		head   string
	}
	groups := map[groupKey][]Record{}
	for _, r := range records {
		if r.Status >= 400 || len(r.RespBody) == 0 {
			continue
		}
		segs := splitPath(r.Path)
		head := ""
		if len(segs) > 0 {
			head = segs[0]
		}
		k := groupKey{method: strings.ToUpper(r.Method), nseg: len(segs), head: head}
		groups[k] = append(groups[k], r)
	}
	var services []Service
	for k, recs := range groups {
		segLists := make([][]string, len(recs))
		for i, r := range recs {
			segLists[i] = splitPath(r.Path)
		}
		pattern := make([]string, k.nseg)
		param := 0
		for pos := 0; pos < k.nseg; pos++ {
			distinct := map[string]bool{}
			for _, segs := range segLists {
				distinct[segs[pos]] = true
			}
			if len(distinct) == 1 {
				pattern[pos] = segLists[0][pos]
			} else {
				param++
				pattern[pos] = ":p" + strconv.Itoa(param)
			}
		}
		services = append(services, Service{
			Method:  k.method,
			Pattern: "/" + strings.Join(pattern, "/"),
			Samples: recs,
		})
	}
	sort.Slice(services, func(i, j int) bool { return services[i].Name() < services[j].Name() })
	return services
}

func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// ---- Fuzzing ----

// Planted records one tracked value injected into a fuzzed request —
// an entry of the paper's fuzz dictionary.
type Planted struct {
	// Where locates the injection: "query:<name>", "json:<key>", or
	// "body".
	Where string
	// Value is the distinctive planted value.
	Value any
}

// FuzzedRequest pairs a mutated request with the dictionary of values
// planted into it.
type FuzzedRequest struct {
	Req     *httpapp.Request
	Planted []Planted
}

// fuzzString returns a distinctive string marker unlikely to collide
// with organic values.
func fuzzString(i int) string { return fmt.Sprintf("FZV%04d", i) }

// fuzzNumber returns a distinctive numeric marker.
func fuzzNumber(i int) float64 { return 770000 + float64(i) }

// Fuzz derives tracked variants of a sample exchange: one variant per
// mutable location (each query parameter, each scalar JSON body field,
// or the raw body). The planted values are what the dynamic analysis
// greps for in the RW logs to find unmarshal statements.
func Fuzz(sample Record, startIdx int) []FuzzedRequest {
	var out []FuzzedRequest
	idx := startIdx

	baseReq := func() *httpapp.Request {
		q := make(map[string]string, len(sample.Query))
		for k, v := range sample.Query {
			q[k] = v
		}
		return &httpapp.Request{
			Method: sample.Method,
			Path:   sample.Path,
			Query:  q,
			Body:   append([]byte(nil), sample.ReqBody...),
		}
	}

	// Query parameters.
	qkeys := make([]string, 0, len(sample.Query))
	for k := range sample.Query {
		qkeys = append(qkeys, k)
	}
	sort.Strings(qkeys)
	for _, k := range qkeys {
		req := baseReq()
		var planted any
		if _, err := strconv.ParseFloat(sample.Query[k], 64); err == nil {
			n := fuzzNumber(idx)
			req.Query[k] = strconv.FormatFloat(n, 'f', -1, 64)
			planted = n
		} else {
			s := fuzzString(idx)
			req.Query[k] = s
			planted = s
		}
		out = append(out, FuzzedRequest{
			Req:     req,
			Planted: []Planted{{Where: "query:" + k, Value: planted}},
		})
		idx++
	}

	// JSON body fields.
	var jsonBody map[string]any
	if len(sample.ReqBody) > 0 && json.Unmarshal(sample.ReqBody, &jsonBody) == nil && jsonBody != nil {
		jkeys := make([]string, 0, len(jsonBody))
		for k := range jsonBody {
			jkeys = append(jkeys, k)
		}
		sort.Strings(jkeys)
		for _, k := range jkeys {
			req := baseReq()
			mutated := make(map[string]any, len(jsonBody))
			for kk, vv := range jsonBody {
				mutated[kk] = vv
			}
			var planted any
			switch jsonBody[k].(type) {
			case float64:
				planted = fuzzNumber(idx)
			case string:
				planted = fuzzString(idx)
			default:
				continue // only scalar fields are fuzzed
			}
			mutated[k] = planted
			b, err := json.Marshal(mutated)
			if err != nil {
				continue
			}
			req.Body = b
			out = append(out, FuzzedRequest{
				Req:     req,
				Planted: []Planted{{Where: "json:" + k, Value: planted}},
			})
			idx++
		}
		return out
	}

	// Raw (non-JSON) body: plant a distinctive byte pattern of the same
	// length.
	if len(sample.ReqBody) > 0 {
		req := baseReq()
		marker := []byte(fuzzString(idx))
		body := bytes.Repeat(marker, len(sample.ReqBody)/len(marker)+1)[:len(sample.ReqBody)]
		req.Body = body
		out = append(out, FuzzedRequest{
			Req:     req,
			Planted: []Planted{{Where: "body", Value: append([]byte(nil), body...)}},
		})
	}
	return out
}
