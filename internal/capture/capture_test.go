package capture

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapp"
)

const echoSrc = `
func echo(req any, res any) any {
	res.send(req.param("msg"))
	return nil
}
func getItem(req any, res any) any {
	res.send("item-" + req.param("id"))
	return nil
}
func compute(req any, res any) any {
	body := req.json()
	res.send(body["x"] + 1)
	return nil
}`

var echoRoutes = []httpapp.Route{
	{Method: "GET", Path: "/echo", Handler: "echo"},
	{Method: "GET", Path: "/items/:id", Handler: "getItem"},
	{Method: "POST", Path: "/compute", Handler: "compute"},
}

func newEchoApp(t *testing.T) *httpapp.App {
	t.Helper()
	app, err := httpapp.New("echo", echoSrc, echoRoutes)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestMiddlewareRecordsExchanges(t *testing.T) {
	app := newEchoApp(t)
	log := NewLog()
	srv := httptest.NewServer(log.Middleware(app))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/echo?msg=hi")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Error(err)
	}
	post, err := srv.Client().Post(srv.URL+"/compute", "application/json", strings.NewReader(`{"x": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := post.Body.Close(); err != nil {
		t.Error(err)
	}

	recs := log.Records()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	if recs[0].Method != "GET" || recs[0].Path != "/echo" || recs[0].Query["msg"] != "hi" {
		t.Fatalf("rec[0] = %+v", recs[0])
	}
	if string(recs[0].RespBody) != `"hi"` {
		t.Fatalf("resp body = %s", recs[0].RespBody)
	}
	if recs[1].Method != "POST" || string(recs[1].ReqBody) != `{"x": 4}` {
		t.Fatalf("rec[1] = %+v", recs[1])
	}
	if string(recs[1].RespBody) != "5" {
		t.Fatalf("compute resp = %s", recs[1].RespBody)
	}
	if recs[0].ReqSize() <= 0 || recs[0].RespSize() <= 0 {
		t.Fatal("sizes not positive")
	}
}

func TestInvokeRecorded(t *testing.T) {
	app := newEchoApp(t)
	log := NewLog()
	resp, err := log.InvokeRecorded(app, &httpapp.Request{
		Method: "GET", Path: "/echo", Query: map[string]string{"msg": "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || log.Len() != 1 {
		t.Fatalf("status=%d len=%d", resp.Status, log.Len())
	}
}

func TestInferSubjectStaticAndParam(t *testing.T) {
	records := []Record{
		{Method: "GET", Path: "/echo", Status: 200, RespBody: []byte("a")},
		{Method: "GET", Path: "/echo", Status: 200, RespBody: []byte("b")},
		{Method: "GET", Path: "/items/1", Status: 200, RespBody: []byte("x")},
		{Method: "GET", Path: "/items/2", Status: 200, RespBody: []byte("y")},
		{Method: "POST", Path: "/compute", Status: 200, RespBody: []byte("5")},
		// Errors and empty responses are excluded.
		{Method: "GET", Path: "/broken", Status: 500, RespBody: []byte("e")},
		{Method: "GET", Path: "/empty", Status: 200, RespBody: nil},
	}
	services := InferSubject(records)
	names := make([]string, len(services))
	for i, s := range services {
		names[i] = s.Name()
	}
	want := []string{"GET /echo", "GET /items/:p1", "POST /compute"}
	if len(names) != len(want) {
		t.Fatalf("services = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("services = %v, want %v", names, want)
		}
	}
	// Samples are preserved per service.
	for _, s := range services {
		if len(s.Samples) == 0 {
			t.Fatalf("service %s has no samples", s.Name())
		}
	}
}

func TestInferSubjectDistinguishesMethods(t *testing.T) {
	records := []Record{
		{Method: "GET", Path: "/x", Status: 200, RespBody: []byte("1")},
		{Method: "POST", Path: "/x", Status: 200, RespBody: []byte("1")},
	}
	if got := len(InferSubject(records)); got != 2 {
		t.Fatalf("services = %d, want 2 (GET and POST are distinct)", got)
	}
}

func TestFuzzQueryParams(t *testing.T) {
	sample := Record{
		Method: "GET", Path: "/echo",
		Query: map[string]string{"msg": "hello", "n": "42"},
	}
	fuzzed := Fuzz(sample, 0)
	if len(fuzzed) != 2 {
		t.Fatalf("fuzzed %d variants, want 2", len(fuzzed))
	}
	// The string param gets a marker string, the numeric one a marker
	// number.
	byWhere := map[string]FuzzedRequest{}
	for _, f := range fuzzed {
		if len(f.Planted) != 1 {
			t.Fatalf("planted = %v", f.Planted)
		}
		byWhere[f.Planted[0].Where] = f
	}
	msgF, ok := byWhere["query:msg"]
	if !ok {
		t.Fatal("no fuzz for query:msg")
	}
	if !strings.HasPrefix(msgF.Req.Query["msg"], "FZV") {
		t.Fatalf("msg fuzz = %q", msgF.Req.Query["msg"])
	}
	nF, ok := byWhere["query:n"]
	if !ok {
		t.Fatal("no fuzz for query:n")
	}
	if v, isNum := nF.Planted[0].Value.(float64); !isNum || v < 770000 {
		t.Fatalf("numeric fuzz = %v", nF.Planted[0].Value)
	}
	// Unfuzzed fields keep their original values.
	if msgF.Req.Query["n"] != "42" {
		t.Fatal("fuzz mutated unrelated parameter")
	}
}

func TestFuzzJSONBody(t *testing.T) {
	sample := Record{
		Method: "POST", Path: "/compute",
		ReqBody: []byte(`{"x": 4, "tag": "t", "nested": {"deep": 1}}`),
	}
	fuzzed := Fuzz(sample, 10)
	// Only the two scalar fields are fuzzed.
	if len(fuzzed) != 2 {
		t.Fatalf("fuzzed %d variants, want 2", len(fuzzed))
	}
	for _, f := range fuzzed {
		var body map[string]any
		if err := json.Unmarshal(f.Req.Body, &body); err != nil {
			t.Fatal(err)
		}
		where := f.Planted[0].Where
		switch where {
		case "json:x":
			if body["x"].(float64) < 770000 {
				t.Fatalf("x fuzz = %v", body["x"])
			}
			if body["tag"] != "t" {
				t.Fatal("unrelated field mutated")
			}
		case "json:tag":
			if !strings.HasPrefix(body["tag"].(string), "FZV") {
				t.Fatalf("tag fuzz = %v", body["tag"])
			}
		default:
			t.Fatalf("unexpected fuzz location %q", where)
		}
	}
}

func TestFuzzRawBody(t *testing.T) {
	sample := Record{
		Method: "POST", Path: "/upload",
		ReqBody: bytes.Repeat([]byte{0xAB}, 100),
	}
	fuzzed := Fuzz(sample, 0)
	if len(fuzzed) != 1 {
		t.Fatalf("fuzzed %d variants, want 1", len(fuzzed))
	}
	f := fuzzed[0]
	if f.Planted[0].Where != "body" {
		t.Fatalf("where = %q", f.Planted[0].Where)
	}
	if len(f.Req.Body) != 100 {
		t.Fatalf("fuzzed body length = %d, want 100 (length-preserving)", len(f.Req.Body))
	}
	if !bytes.Contains(f.Req.Body, []byte("FZV")) {
		t.Fatal("body lacks marker")
	}
}

func TestFuzzDistinctIndices(t *testing.T) {
	sample := Record{Method: "GET", Path: "/e", Query: map[string]string{"a": "x", "b": "y"}}
	fuzzed := Fuzz(sample, 0)
	vals := map[string]bool{}
	for _, f := range fuzzed {
		vals[f.Req.Query[strings.TrimPrefix(f.Planted[0].Where, "query:")]] = true
	}
	if len(vals) != 2 {
		t.Fatalf("markers not distinct: %v", vals)
	}
}

func TestFuzzNoMutableLocations(t *testing.T) {
	sample := Record{Method: "GET", Path: "/static"}
	if fuzzed := Fuzz(sample, 0); len(fuzzed) != 0 {
		t.Fatalf("fuzzed %d variants for an immutable request", len(fuzzed))
	}
}
