package analysis

import (
	"strings"
	"unicode"
)

// sqlKeywords are the statement-leading keywords that identify an
// argument value as a SQL command — the paper's modified INVOKEFUNCTION
// callback examines ARGS for exactly this.
var sqlKeywords = []string{
	"SELECT", "INSERT", "UPDATE", "DELETE", "CREATE",
	"BEGIN", "START", "COMMIT", "ROLLBACK", "DROP",
}

// IsSQLCommand reports whether a value looks like a SQL command.
func IsSQLCommand(v any) bool {
	s, ok := v.(string)
	if !ok {
		return false
	}
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	for _, kw := range sqlKeywords {
		if strings.HasPrefix(upper, kw+" ") || upper == kw {
			return true
		}
	}
	return false
}

// SQLTables extracts the table names referenced by a SQL command: the
// identifiers following FROM, INTO, UPDATE, JOIN, and TABLE.
func SQLTables(q string) []string {
	fields := tokenizeSQL(q)
	var tables []string
	seen := map[string]bool{}
	for i := 0; i+1 < len(fields); i++ {
		switch strings.ToUpper(fields[i]) {
		case "FROM", "INTO", "JOIN", "TABLE":
			name := fields[i+1]
			if isSQLIdent(name) && !seen[name] {
				seen[name] = true
				tables = append(tables, name)
			}
		case "UPDATE":
			if i == 0 { // only statement-leading UPDATE names a table
				name := fields[1]
				if isSQLIdent(name) && !seen[name] {
					seen[name] = true
					tables = append(tables, name)
				}
			}
		case "EXISTS": // CREATE TABLE IF NOT EXISTS t
			name := fields[i+1]
			if isSQLIdent(name) && !seen[name] {
				seen[name] = true
				tables = append(tables, name)
			}
		}
	}
	return tables
}

// tokenizeSQL splits a SQL string on whitespace and punctuation, keeping
// identifiers and keywords.
func tokenizeSQL(q string) []string {
	var fields []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	inString := false
	for _, r := range q {
		if inString {
			if r == '\'' {
				inString = false
			}
			continue
		}
		switch {
		case r == '\'':
			inString = true
			flush()
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return fields
}

func isSQLIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) && r != '_' {
			return false
		}
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	// Keywords are not table names.
	up := strings.ToUpper(s)
	for _, kw := range append(sqlKeywords, "IF", "NOT", "EXISTS", "WHERE", "SET", "VALUES") {
		if up == kw {
			return false
		}
	}
	return true
}

// IsFilePath reports whether a value looks like a file URL or path — the
// heuristic the paper uses to identify file accesses by argument
// inspection.
func IsFilePath(v any) bool {
	s, ok := v.(string)
	if !ok || s == "" {
		return false
	}
	if strings.HasPrefix(s, "file://") {
		return true
	}
	if strings.ContainsAny(s, " \t\n") {
		return false
	}
	// A path-like string: contains a slash or a dot-extension.
	if strings.Contains(s, "/") {
		return true
	}
	if i := strings.LastIndexByte(s, '.'); i > 0 && i < len(s)-1 {
		ext := s[i+1:]
		return len(ext) <= 5 && !strings.ContainsAny(ext, "0123456789")
	}
	return false
}
