package analysis

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/capture"
	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// Parallelism configures AnalyzeAppContext's worker pool.
type Parallelism struct {
	// Workers bounds how many services are analyzed concurrently.
	// Zero or negative means runtime.GOMAXPROCS(0); 1 forces the
	// sequential path on the analyzer's own app instance.
	Workers int
}

// fork builds an isolated sibling analyzer: a fresh instance of the
// same app (own interpreter, database, filesystem) pinned to the
// parent's captured state_init. Restore only reads the shared State —
// deep-copying into the app — so any number of forks may run
// concurrently against it.
func (a *Analyzer) fork() (*Analyzer, error) {
	clone, err := a.app.Clone()
	if err != nil {
		return nil, err
	}
	runner := checkpoint.NewRunnerWith(clone, a.runner.Init())
	runner.Reset()
	return &Analyzer{app: clone, runner: runner}, nil
}

// AnalyzeAppContext analyzes every inferred service and merges the
// state units. With more than one worker, each worker analyzes
// services on its own forked app instance — state isolation
// (checkpoint restore of state_init before every execution) guarantees
// per-service analyses are independent, and statement numbering is
// deterministic per parse, so the fan-out changes nothing observable.
//
// Results are returned in the input service order and state units are
// merged in that same order, byte-identical to the sequential path.
// On failure the first error in input order is returned and
// outstanding work is canceled.
func (a *Analyzer) AnalyzeAppContext(ctx context.Context, services []capture.Service, par Parallelism) ([]*ServiceAnalysis, StateUnits, error) {
	workers := par.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(services) {
		workers = len(services)
	}
	// On a single-CPU host the fan-out cannot run anything concurrently:
	// forking per-worker app instances only adds clone cost on top of
	// the same serial execution. Fall back to the sequential path even
	// when callers explicitly requested more workers.
	if runtime.GOMAXPROCS(0) == 1 {
		workers = 1
	}
	// The "analyze" span parents every per-service span: workers receive
	// this ctx, so spans they open from their goroutines attach under it.
	// The span tree is lock-protected, which keeps the fan-out race-free
	// without any coordination here.
	ctx, span := obs.StartSpan(ctx, "analyze",
		obs.A("workers", strconv.Itoa(workers)),
		obs.A("services", strconv.Itoa(len(services))))
	defer span.End()
	if workers <= 1 {
		return a.analyzeAppSequential(ctx, services)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*ServiceAnalysis, len(services))
	errs := make([]error, len(services))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker, err := a.fork()
			for i := range jobs {
				if err != nil {
					// The fork failed; attribute the error to the
					// first job this worker drew and stop.
					errs[i] = fmt.Errorf("forking analyzer: %w", err)
					cancel()
					return
				}
				sa, serr := worker.AnalyzeServiceContext(ctx, services[i])
				if serr != nil {
					errs[i] = serr
					cancel()
					return
				}
				results[i] = sa
			}
		}()
	}
	for i := range services {
		select {
		case jobs <- i:
		case <-ctx.Done():
		}
	}
	close(jobs)
	wg.Wait()

	// Deterministic error propagation: the lowest-index failure wins,
	// matching what the sequential path would have reported.
	for _, err := range errs {
		if err != nil {
			return nil, StateUnits{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, StateUnits{}, err
	}
	var merged StateUnits
	for _, sa := range results {
		merged.Merge(sa.State)
	}
	return results, merged, nil
}

func (a *Analyzer) analyzeAppSequential(ctx context.Context, services []capture.Service) ([]*ServiceAnalysis, StateUnits, error) {
	var (
		results []*ServiceAnalysis
		merged  StateUnits
	)
	for _, svc := range services {
		sa, err := a.AnalyzeServiceContext(ctx, svc)
		if err != nil {
			return nil, StateUnits{}, err
		}
		results = append(results, sa)
		merged.Merge(sa.State)
	}
	return results, merged, nil
}
