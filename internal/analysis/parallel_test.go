package analysis_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/httpapp"
	"repro/internal/obs"
	"repro/internal/workload"
)

// subjectServices drives a subject's regression traffic through a
// throwaway app instance and infers its services.
func subjectServices(t *testing.T, sub workload.Subject) []capture.Service {
	t.Helper()
	app, err := httpapp.New(sub.Name, sub.Source, sub.Routes())
	if err != nil {
		t.Fatal(err)
	}
	records, err := core.CaptureTraffic(app, sub.RegressionVectors())
	if err != nil {
		t.Fatal(err)
	}
	services := capture.InferSubject(records)
	if len(services) < 2 {
		t.Fatalf("subject %s inferred only %d services", sub.Name, len(services))
	}
	return services
}

func newAnalyzer(t *testing.T, sub workload.Subject) *analysis.Analyzer {
	t.Helper()
	app, err := httpapp.New(sub.Name, sub.Source, sub.Routes())
	if err != nil {
		t.Fatal(err)
	}
	return analysis.NewAnalyzer(app)
}

// TestAnalyzeAppParallelMatchesSequential asserts the worker pool is
// invisible: parallel AnalyzeApp output (result ordering and merged
// state units) equals the sequential output on multi-service subjects.
// Run under -race this also exercises the isolation of forked
// analyzers.
func TestAnalyzeAppParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"fobojet", "sensor-hub"} {
		sub, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		services := subjectServices(t, sub)

		seqRes, seqUnits, err := newAnalyzer(t, sub).AnalyzeAppContext(
			context.Background(), services, analysis.Parallelism{Workers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		parRes, parUnits, err := newAnalyzer(t, sub).AnalyzeAppContext(
			context.Background(), services, analysis.Parallelism{Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}

		if len(seqRes) != len(parRes) {
			t.Fatalf("%s: %d sequential results vs %d parallel", name, len(seqRes), len(parRes))
		}
		for i := range seqRes {
			if !reflect.DeepEqual(seqRes[i], parRes[i]) {
				t.Errorf("%s: result %d (%s) diverges:\nsequential: %+v\nparallel:   %+v",
					name, i, services[i].Name(), seqRes[i], parRes[i])
			}
		}
		if !reflect.DeepEqual(seqUnits, parUnits) {
			t.Errorf("%s: merged units diverge:\nsequential: %+v\nparallel:   %+v", name, seqUnits, parUnits)
		}
	}
}

// findSpan walks a span tree depth-first for the named span.
func findSpan(spans []*obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
		if found := findSpan(sp.Children, name); found != nil {
			return found
		}
	}
	return nil
}

// TestAnalyzeAppSingleCPUFallsBackSequential pins the GOMAXPROCS==1
// fallback: on a single-CPU host an explicit Workers: 4 request must
// not fan out (forking per-worker app instances only adds clone cost
// with no concurrency to pay for it), and the analyze span must record
// the effective worker count of 1.
func TestAnalyzeAppSingleCPUFallsBackSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	sub, err := workload.ByName("fobojet")
	if err != nil {
		t.Fatal(err)
	}
	services := subjectServices(t, sub)

	o := obs.New()
	ctx := obs.With(context.Background(), o)
	parRes, parUnits, err := newAnalyzer(t, sub).AnalyzeAppContext(
		ctx, services, analysis.Parallelism{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	span := findSpan(o.Snapshot().Trace, "analyze")
	if span == nil {
		t.Fatal("no analyze span recorded")
	}
	if got := span.Attrs["workers"]; got != "1" {
		t.Errorf("analyze span workers = %q on GOMAXPROCS=1, want \"1\"", got)
	}

	seqRes, seqUnits, err := newAnalyzer(t, sub).AnalyzeAppContext(
		context.Background(), services, analysis.Parallelism{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Errorf("fallback results diverge from sequential")
	}
	if !reflect.DeepEqual(seqUnits, parUnits) {
		t.Errorf("fallback merged units diverge from sequential")
	}
}

// TestAnalyzeAppContextCanceled asserts a canceled context aborts the
// fan-out with the context's error.
func TestAnalyzeAppContextCanceled(t *testing.T) {
	sub, err := workload.ByName("fobojet")
	if err != nil {
		t.Fatal(err)
	}
	services := subjectServices(t, sub)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, _, err := newAnalyzer(t, sub).AnalyzeAppContext(ctx, services, analysis.Parallelism{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: canceled context did not abort analysis", workers)
		}
	}
}

// TestTransformParallelMatchesSequential asserts the whole pipeline
// output — plans, replica source, merged units — is identical whether
// analysis ran on one worker or many.
func TestTransformParallelMatchesSequential(t *testing.T) {
	sub, err := workload.ByName("sensor-hub")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.TransformSubjectTrafficContext(
		context.Background(), sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.TransformSubjectTrafficContext(
		context.Background(), sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.ReplicaSource != par.ReplicaSource {
		t.Errorf("replica source diverges between sequential and parallel analysis")
	}
	if !reflect.DeepEqual(seq.Units, par.Units) {
		t.Errorf("merged units diverge:\nsequential: %+v\nparallel:   %+v", seq.Units, par.Units)
	}
	if len(seq.Plans) != len(par.Plans) {
		t.Fatalf("plan count diverges: %d vs %d", len(seq.Plans), len(par.Plans))
	}
	for name, sp := range seq.Plans {
		pp := par.Plans[name]
		if pp == nil {
			t.Errorf("%s: missing from parallel plans", name)
			continue
		}
		if sp.Replicated != pp.Replicated {
			t.Errorf("%s: Replicated %v vs %v", name, sp.Replicated, pp.Replicated)
		}
		if !reflect.DeepEqual(sp.Extraction, pp.Extraction) {
			t.Errorf("%s: extraction diverges", name)
		}
		// Each Transform run captures its own traffic, so the embedded
		// Service samples carry run-varying wall-clock latencies;
		// compare the analysis proper with Service normalized out.
		sa, pa := *sp.Analysis, *pp.Analysis
		sa.Service, pa.Service = capture.Service{}, capture.Service{}
		if !reflect.DeepEqual(sa, pa) {
			t.Errorf("%s: analysis diverges:\nsequential: %+v\nparallel:   %+v", name, sa, pa)
		}
	}
}
