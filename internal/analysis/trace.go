// Package analysis implements EdgStr's dynamic dependence analysis
// (Algorithm 1 in the paper): it executes services under Jalangi-style
// instrumentation with state isolation, fuzzes their HTTP messages to
// locate unmarshaling (entry) and marshaling (exit) statements, encodes
// the observations as Datalog facts (RW-LOG, RW-LOG-FUZZED, STMT-DEP,
// ACTUAL), evaluates the STMT-UNMAR / STMT-MAR / transitive STMT-T-DEP
// rules, and identifies the replicated state units — database tables,
// files, and global variables — each service touches.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/httpapp"
	"repro/internal/script"
	"repro/internal/sqldb"
)

// RWEvent is one observed variable read or write.
type RWEvent struct {
	// Step is the event's position in execution order.
	Step int
	Stmt script.StmtID
	Var  string
	Val  any
	// Write is true for writes, false for reads.
	Write bool
}

// InvokeEvent is one observed function invocation (the modified
// INVOKEFUNCTION callback of the paper, with args available for SQL and
// file-URL inspection).
type InvokeEvent struct {
	Step   int
	Stmt   script.StmtID
	Fn     string
	Args   []any
	Result any
}

// DBMutation attributes one observed database row change to the
// statement whose SQL invocation caused it — the product of the paper's
// shadow execution of identified SQL commands (§III-C).
type DBMutation struct {
	Stmt     script.StmtID
	Mutation sqldb.Mutation
}

// Trace is the full instrumentation record of one service execution.
type Trace struct {
	RW      []RWEvent
	Invokes []InvokeEvent
	// DBMutations records row changes with statement attribution.
	DBMutations []DBMutation
	// StmtOrder records statement entries in execution order.
	StmtOrder []script.StmtID
	// Response is the execution's HTTP response.
	Response *httpapp.Response
	// Err is the handler error, if the execution failed.
	Err error
}

// ExecutedSet returns the distinct executed statements.
func (t *Trace) ExecutedSet() map[script.StmtID]bool {
	set := make(map[script.StmtID]bool, len(t.StmtOrder))
	for _, id := range t.StmtOrder {
		set[id] = true
	}
	return set
}

// Collect executes one request under instrumentation and returns the
// trace. The caller is responsible for state isolation (restore before
// each Collect).
func Collect(app *httpapp.App, req *httpapp.Request) *Trace {
	tr := &Trace{}
	step := 0
	var cur script.StmtID
	in := app.Interp()
	// Shadow-execution probe: every committed row change is attributed
	// to the statement under execution when it happened.
	app.DB().SetProbe(func(m sqldb.Mutation) {
		tr.DBMutations = append(tr.DBMutations, DBMutation{Stmt: cur, Mutation: m})
	})
	defer app.DB().SetProbe(nil)
	in.SetHooks(script.Hooks{
		EnterStmt: func(id script.StmtID) {
			cur = id
			tr.StmtOrder = append(tr.StmtOrder, id)
		},
		Read: func(id script.StmtID, name string, val any) {
			step++
			tr.RW = append(tr.RW, RWEvent{Step: step, Stmt: id, Var: name, Val: val})
		},
		Write: func(id script.StmtID, name string, val any) {
			step++
			tr.RW = append(tr.RW, RWEvent{Step: step, Stmt: id, Var: name, Val: val, Write: true})
		},
		Invoke: func(id script.StmtID, fn string, args []any, result any) {
			step++
			tr.Invokes = append(tr.Invokes, InvokeEvent{Step: step, Stmt: id, Fn: fn, Args: args, Result: result})
		},
	})
	defer in.SetHooks(script.Hooks{})
	resp, _, err := app.Invoke(req)
	tr.Response = resp
	tr.Err = err
	return tr
}

// ContainsValue reports whether haystack contains the marker value:
// equal scalars, substring for strings, subslice for bytes, or any
// nested occurrence inside lists and maps. This is how planted fuzz
// values are recognized in RW logs even after light processing.
func ContainsValue(haystack, marker any) bool {
	switch m := marker.(type) {
	case string:
		return containsString(haystack, m)
	case float64:
		return containsNumber(haystack, m)
	case []byte:
		return containsBytes(haystack, m)
	default:
		return false
	}
}

func containsString(v any, m string) bool {
	switch x := v.(type) {
	case string:
		return strings.Contains(x, m)
	case []byte:
		return strings.Contains(string(x), m)
	case *script.List:
		for _, e := range x.Elems {
			if containsString(e, m) {
				return true
			}
		}
	case map[string]any:
		for _, e := range x {
			if containsString(e, m) {
				return true
			}
		}
	}
	return false
}

func containsNumber(v any, m float64) bool {
	switch x := v.(type) {
	case float64:
		return x == m
	case string:
		// Numbers often travel as strings in query parameters.
		return strings.Contains(x, trimFloat(m))
	case *script.List:
		for _, e := range x.Elems {
			if containsNumber(e, m) {
				return true
			}
		}
	case map[string]any:
		for _, e := range x {
			if containsNumber(e, m) {
				return true
			}
		}
	}
	return false
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

func containsBytes(v any, m []byte) bool {
	if len(m) == 0 {
		return false
	}
	switch x := v.(type) {
	case []byte:
		return bytesContains(x, m)
	case string:
		return bytesContains([]byte(x), m)
	case *script.List:
		for _, e := range x.Elems {
			if containsBytes(e, m) {
				return true
			}
		}
	case map[string]any:
		for _, e := range x {
			if containsBytes(e, m) {
				return true
			}
		}
	}
	return false
}

func bytesContains(h, n []byte) bool {
	if strings.Contains(string(h), string(n)) {
		return true
	}
	// Planted byte markers repeat a short unit (capture.Fuzz); a
	// processed fragment of the payload still contains one whole unit if
	// it is long enough.
	if len(n) >= 7 && len(h) >= 14 {
		return strings.Contains(string(h), string(n[:7]))
	}
	return false
}
