package analysis

import (
	"context"
	"fmt"
	"go/ast"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/checkpoint"
	"repro/internal/datalog"
	"repro/internal/httpapp"
	"repro/internal/obs"
	"repro/internal/script"
)

// StateUnits lists the replicated components a service touches — the
// paper's "database tables", "files", and "program variables".
type StateUnits struct {
	// Tables are SQL tables referenced by the service.
	Tables []string
	// Files are VFS paths the service accesses.
	Files []string
	// Globals are global variables the service reads or writes.
	Globals []string
	// SQLStmts are the statements performing SQL invocations.
	SQLStmts []script.StmtID
	// FileStmts are the statements performing file accesses.
	FileStmts []script.StmtID
	// GlobalWrites are the globals the service writes (they need
	// outbound synchronization, not just initialization).
	GlobalWrites []string
	// WriteTables are the tables the service actually mutates, as
	// observed by the shadow execution of its SQL invocations; read-only
	// tables need initialization but no outbound synchronization.
	WriteTables []string
	// FileWrites are the VFS paths the service mutates (fs.write /
	// fs.remove invocations); read-only file accesses stay out of it.
	FileWrites []string
}

// ReadOnly reports whether the observed executions performed no writes
// to any replicated state unit — no global writes, no table mutations,
// no file writes. Read-only services are eligible for the concurrent
// serve path: their invocations can run under a shared lock.
func (u StateUnits) ReadOnly() bool {
	return len(u.GlobalWrites) == 0 && len(u.WriteTables) == 0 && len(u.FileWrites) == 0
}

// GlobalsToSync returns the globals that participate in replication:
// everything the service reads (needs initialization) or writes (needs
// outbound synchronization).
func (u StateUnits) GlobalsToSync() []string { return u.Globals }

// Merge folds another unit set into u.
func (u *StateUnits) Merge(o StateUnits) {
	u.Tables = mergeSorted(u.Tables, o.Tables)
	u.Files = mergeSorted(u.Files, o.Files)
	u.Globals = mergeSorted(u.Globals, o.Globals)
	u.GlobalWrites = mergeSorted(u.GlobalWrites, o.GlobalWrites)
	u.WriteTables = mergeSorted(u.WriteTables, o.WriteTables)
	u.FileWrites = mergeSorted(u.FileWrites, o.FileWrites)
	u.SQLStmts = mergeStmts(u.SQLStmts, o.SQLStmts)
	u.FileStmts = mergeStmts(u.FileStmts, o.FileStmts)
}

// mergeSorted merges two sorted, deduplicated string slices (the
// invariant every StateUnits field maintains) into a fresh sorted,
// deduplicated slice. When one side is empty the other is returned
// as-is; merged results are treated as immutable.
func mergeSorted(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeStmts merges two sorted, deduplicated statement-ID slices the
// same way mergeSorted merges strings.
func mergeStmts(a, b []script.StmtID) []script.StmtID {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]script.StmtID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ServiceAnalysis is the result of analyzing one remote service s_i.
type ServiceAnalysis struct {
	// Service is the inferred interface entry.
	Service capture.Service
	// Handler is the script function implementing the service.
	Handler string
	// Entry is the unmarshaling statement (STMT-UNMAR) and the variable
	// holding p_i there.
	Entry    script.StmtID
	EntryVar string
	// Exit is the marshaling statement (STMT-MAR) and the variable (or
	// expression base) holding r_i there.
	Exit    script.StmtID
	ExitVar string
	// Extracted is the dependence closure between entry and exit — the
	// statements the Extract Function refactoring will replicate.
	Extracted []script.StmtID
	// Executed is every statement observed in successful executions.
	Executed []script.StmtID
	// State describes the replicated state units.
	State StateUnits
}

// Analyzer drives the per-service analysis over an app with isolated
// state.
type Analyzer struct {
	app    *httpapp.App
	runner *checkpoint.Runner
}

// NewAnalyzer captures the app's state_init and returns an analyzer.
// The app must be freshly initialized.
func NewAnalyzer(app *httpapp.App) *Analyzer {
	return &Analyzer{app: app, runner: checkpoint.NewRunner(app)}
}

// Runner exposes the underlying isolation runner.
func (a *Analyzer) Runner() *checkpoint.Runner { return a.runner }

// AnalyzeService runs Algorithm 1 for one inferred service: isolated
// base execution, fuzzed executions, Datalog solving for entry/exit and
// the dependence closure, and state-unit identification.
func (a *Analyzer) AnalyzeService(svc capture.Service) (*ServiceAnalysis, error) {
	return a.AnalyzeServiceContext(context.Background(), svc)
}

// AnalyzeServiceContext is AnalyzeService with cancellation: the
// context is checked before each isolated execution, so canceled
// analyses stop between runs rather than mid-trace. When an obs.Obs is
// attached to the context the analysis opens an "analysis.service"
// span and records its wall-clock latency in the
// "analysis.service_ms" histogram.
func (a *Analyzer) AnalyzeServiceContext(ctx context.Context, svc capture.Service) (*ServiceAnalysis, error) {
	if len(svc.Samples) == 0 {
		return nil, fmt.Errorf("analysis: service %s has no samples", svc.Name())
	}
	o := obs.From(ctx)
	ctx, span := obs.StartSpan(ctx, "analysis.service", obs.A("service", svc.Name()))
	started := o.Now()
	defer func() {
		o.Histogram("analysis.service_ms").Observe(float64(o.Since(started)) / float64(time.Millisecond))
		o.Counter("analysis.services").Add(1)
		span.End()
	}()
	sample := svc.Samples[0]
	baseReq := &httpapp.Request{
		Method: sample.Method,
		Path:   sample.Path,
		Query:  sample.Query,
		Body:   sample.ReqBody,
	}
	rt, _, err := a.app.Lookup(baseReq.Method, baseReq.Path)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", svc.Name(), err)
	}

	// Isolated base execution under instrumentation.
	a.runner.Reset()
	base := Collect(a.app, baseReq)
	if base.Err != nil {
		return nil, fmt.Errorf("analysis: base execution of %s failed: %w", svc.Name(), base.Err)
	}

	// Fuzzed executions, each from state_init.
	fuzzed := capture.Fuzz(sample, 0)
	traces := make([]*Trace, 0, len(fuzzed))
	for _, fz := range fuzzed {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a.runner.Reset()
		tr := Collect(a.app, fz.Req)
		traces = append(traces, tr)
	}
	a.runner.Reset()

	res := &ServiceAnalysis{Service: svc, Handler: rt.Handler}
	res.Executed = sortedStmts(base.ExecutedSet())

	// Solve for entry/exit and dependence closure.
	if err := a.solve(ctx, res, base, fuzzed, traces); err != nil {
		return nil, err
	}
	res.State = identifyState(a.app, base)

	// Merge the execution results of the remaining samples (Algorithm 1
	// merges St_all across executions): different inputs exercise
	// different branches, and the extraction must cover all of them.
	for s := 1; s < len(svc.Samples) && s < maxAnalysisSamples; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		extra := svc.Samples[s]
		req := &httpapp.Request{Method: extra.Method, Path: extra.Path, Query: extra.Query, Body: extra.ReqBody}
		a.runner.Reset()
		tr := Collect(a.app, req)
		if tr.Err != nil {
			continue // failed executions are discarded (§III-E)
		}
		tmp := &ServiceAnalysis{Service: svc, Handler: rt.Handler}
		if err := a.solve(ctx, tmp, tr, nil, nil); err != nil {
			continue
		}
		res.Extracted = mergeStmts(res.Extracted, tmp.Extracted)
		res.Executed = mergeStmts(res.Executed, sortedStmts(tr.ExecutedSet()))
		res.State.Merge(identifyState(a.app, tr))
	}
	a.runner.Reset()
	return res, nil
}

// maxAnalysisSamples bounds how many samples per service feed the merge.
const maxAnalysisSamples = 5

func sortedStmts(set map[script.StmtID]bool) []script.StmtID {
	out := make([]script.StmtID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sid(id script.StmtID) string { return "s" + strconv.Itoa(int(id)) }
func unsid(s string) script.StmtID {
	n, err := strconv.Atoi(strings.TrimPrefix(s, "s"))
	if err != nil {
		return script.NoStmt
	}
	return script.StmtID(n)
}

// solve builds the Datalog program of §III-E and extracts entry, exit,
// and the transitive dependence closure.
func (a *Analyzer) solve(ctx context.Context, res *ServiceAnalysis, base *Trace, fuzzed []capture.FuzzedRequest, traces []*Trace) error {
	db := datalog.NewDB()
	prog := a.app.Program()

	// RW-LOG(stmt, var) for the base execution, restricted to the
	// handler's function so the extraction boundary stays inside it.
	baseTouched := map[string]bool{} // "stmt|var" pairs seen in base run
	for _, ev := range base.RW {
		if ev.Stmt == script.NoStmt {
			continue
		}
		if _, err := db.AddFact("rwlog", sid(ev.Stmt), ev.Var); err != nil {
			return err
		}
		baseTouched[sid(ev.Stmt)+"|"+ev.Var] = true
	}

	// RW-LOG-FUZZED(i, stmt, var) for events touching the i-th planted
	// value.
	for i, tr := range traces {
		if tr.Err != nil {
			continue // failed fuzz executions are discarded (§III-E)
		}
		marker := fuzzed[i].Planted[0].Value
		for _, ev := range tr.RW {
			if ev.Stmt == script.NoStmt || !ContainsValue(ev.Val, marker) {
				continue
			}
			if _, err := db.AddFact("rwfuzz", strconv.Itoa(i), sid(ev.Stmt), ev.Var); err != nil {
				return err
			}
		}
	}

	// STMT-UNMAR(stmt, var): the same statement/variable position
	// observed reading or writing the parameter in both the base and a
	// fuzzed execution.
	if err := db.AddRule(datalog.NewRule(
		datalog.NewAtom("unmar", datalog.V("S"), datalog.V("Var")),
		datalog.NewAtom("rwfuzz", datalog.V("I"), datalog.V("S"), datalog.V("Var")),
		datalog.NewAtom("rwlog", datalog.V("S"), datalog.V("Var")),
	)); err != nil {
		return err
	}

	// Flow dependences from the base trace: DEP(s_r, s_w) when s_r reads
	// a variable last written by s_w.
	lastWrite := map[string]script.StmtID{}
	for _, ev := range base.RW {
		if ev.Stmt == script.NoStmt {
			continue
		}
		if ev.Write {
			lastWrite[ev.Var] = ev.Stmt
			continue
		}
		if w, ok := lastWrite[ev.Var]; ok && w != ev.Stmt {
			if _, err := db.AddFact("dep", sid(ev.Stmt), sid(w)); err != nil {
				return err
			}
		}
	}

	// Control dependences (the POST-DOM-derived STMT-DEP facts): every
	// executed statement depends on its enclosing control statements.
	parents := controlParents(prog)
	for id := range base.ExecutedSet() {
		for p := parents[id]; p != script.NoStmt; p = parents[p] {
			if _, err := db.AddFact("dep", sid(id), sid(p)); err != nil {
				return err
			}
		}
	}

	// ACTUAL(callStmt, fn): call-site facts let dependence flow through
	// function calls — a call statement depends on the callee's returned
	// computation, which the dynamic flow deps already connect via
	// argument/return variables; the fact is recorded for completeness
	// and for queries over call structure.
	for _, iv := range base.Invokes {
		if iv.Stmt == script.NoStmt {
			continue
		}
		if _, err := db.AddFact("actual", sid(iv.Stmt), iv.Fn); err != nil {
			return err
		}
	}

	// STMT-T-DEP: transitive closure.
	if err := db.AddRule(datalog.NewRule(
		datalog.NewAtom("tdep", datalog.V("X"), datalog.V("Y")),
		datalog.NewAtom("dep", datalog.V("X"), datalog.V("Y")),
	)); err != nil {
		return err
	}
	if err := db.AddRule(datalog.NewRule(
		datalog.NewAtom("tdep", datalog.V("X"), datalog.V("Z")),
		datalog.NewAtom("dep", datalog.V("X"), datalog.V("Y")),
		datalog.NewAtom("tdep", datalog.V("Y"), datalog.V("Z")),
	)); err != nil {
		return err
	}
	_, dlSpan := obs.StartSpan(ctx, "datalog")
	if err := db.Run(); err != nil {
		dlSpan.End()
		return err
	}
	st := db.Stats()
	dlSpan.SetAttr("facts_derived", strconv.Itoa(st.FactsDerived))
	dlSpan.SetAttr("iterations", strconv.Itoa(st.Rounds))
	dlSpan.End()
	if o := obs.From(ctx); o != nil {
		o.Counter("datalog.facts_derived").Add(int64(st.FactsDerived))
		o.Counter("datalog.iterations").Add(int64(st.Rounds))
	}

	// Entry: the earliest-executed STMT-UNMAR statement inside the
	// handler.
	handlerStmts := map[script.StmtID]bool{}
	for _, id := range prog.StmtIDsIn(res.Handler) {
		handlerStmts[id] = true
	}
	execIndex := map[script.StmtID]int{}
	for i, id := range base.StmtOrder {
		if _, seen := execIndex[id]; !seen {
			execIndex[id] = i
		}
	}
	bestIdx := int(^uint(0) >> 1)
	for _, b := range db.Query(datalog.NewAtom("unmar", datalog.V("S"), datalog.V("Var"))) {
		id := unsid(b["S"])
		if !handlerStmts[id] {
			continue
		}
		if idx, ok := execIndex[id]; ok && idx < bestIdx {
			bestIdx = idx
			res.Entry = id
			res.EntryVar = b["Var"]
		}
	}

	// Exit (STMT-MAR): the statement that marshals r_i — identified as
	// the last handler statement that invokes the response-send
	// marshaler or whose written value contains the response payload.
	exitIdx := -1
	respVal := base.Response.Value
	for _, iv := range base.Invokes {
		if !strings.HasPrefix(iv.Fn, "res.send") || !handlerStmts[iv.Stmt] {
			continue
		}
		if idx, ok := execIndex[iv.Stmt]; ok && idx > exitIdx {
			exitIdx = idx
			res.Exit = iv.Stmt
			res.ExitVar = marVarOf(base, iv)
		}
	}
	if res.Exit == script.NoStmt && respVal != nil {
		for _, ev := range base.RW {
			if !ev.Write || !handlerStmts[ev.Stmt] {
				continue
			}
			if script.Equal(ev.Val, respVal) {
				if idx, ok := execIndex[ev.Stmt]; ok && idx > exitIdx {
					exitIdx = idx
					res.Exit = ev.Stmt
					res.ExitVar = ev.Var
				}
			}
		}
	}
	if res.Entry == script.NoStmt {
		// Parameterless services have no unmarshal point; the handler's
		// first executed statement is the boundary.
		for _, id := range base.StmtOrder {
			if handlerStmts[id] {
				res.Entry = id
				break
			}
		}
	}
	if res.Exit == script.NoStmt {
		return fmt.Errorf("analysis: no marshaling statement found for %s", res.Service.Name())
	}

	// Extracted set: the exit's transitive dependences, the entry/exit
	// statements, every side-effecting statement (SQL, file, global
	// write), and their own dependences — restricted to handler
	// statements that actually executed.
	include := map[script.StmtID]bool{res.Entry: true, res.Exit: true}
	addClosure := func(root script.StmtID) {
		for _, b := range db.Query(datalog.NewAtom("tdep", datalog.C(sid(root)), datalog.V("Y"))) {
			include[unsid(b["Y"])] = true
		}
	}
	addClosure(res.Exit)
	globals := map[string]bool{}
	for _, g := range prog.GlobalNames() {
		globals[g] = true
	}
	for _, iv := range base.Invokes {
		if isStateInvoke(iv) {
			include[iv.Stmt] = true
			addClosure(iv.Stmt)
		}
	}
	for _, ev := range base.RW {
		if ev.Write && globals[ev.Var] {
			include[ev.Stmt] = true
			addClosure(ev.Stmt)
		}
	}
	executed := base.ExecutedSet()
	for id := range include {
		if handlerStmts[id] && executed[id] {
			res.Extracted = append(res.Extracted, id)
		}
	}
	sort.Slice(res.Extracted, func(i, j int) bool { return res.Extracted[i] < res.Extracted[j] })
	return nil
}

// marVarOf recovers the variable holding the marshaled value at a
// res.send call site, when the argument came straight from a variable.
func marVarOf(base *Trace, send InvokeEvent) string {
	if len(send.Args) == 0 {
		return ""
	}
	// Find the most recent read at the same statement whose value equals
	// the sent argument.
	var name string
	for _, ev := range base.RW {
		if ev.Step >= send.Step {
			break
		}
		if ev.Stmt == send.Stmt && !ev.Write && script.Equal(ev.Val, send.Args[0]) {
			name = ev.Var
		}
	}
	return name
}

// isStateInvoke reports whether an invocation touches replicated state.
func isStateInvoke(iv InvokeEvent) bool {
	if strings.HasPrefix(iv.Fn, "db.") || strings.HasPrefix(iv.Fn, "fs.") {
		return true
	}
	for _, arg := range iv.Args {
		if IsSQLCommand(arg) {
			return true
		}
	}
	return false
}

// controlParents maps each statement to its nearest enclosing control
// statement (if/for/range/switch) within its function.
func controlParents(prog *script.Program) map[script.StmtID]script.StmtID {
	parents := map[script.StmtID]script.StmtID{}
	for _, name := range prog.FuncNames() {
		fn := prog.Funcs[name]
		var walk func(n ast.Node, ctrl script.StmtID)
		walk = func(n ast.Node, ctrl script.StmtID) {
			switch x := n.(type) {
			case *ast.IfStmt:
				record(prog, parents, x, ctrl)
				id := prog.IDOf(x)
				if x.Init != nil {
					walk(x.Init, id)
				}
				walk(x.Body, id)
				if x.Else != nil {
					walk(x.Else, id)
				}
			case *ast.ForStmt:
				record(prog, parents, x, ctrl)
				id := prog.IDOf(x)
				if x.Init != nil {
					walk(x.Init, id)
				}
				if x.Post != nil {
					walk(x.Post, id)
				}
				walk(x.Body, id)
			case *ast.RangeStmt:
				record(prog, parents, x, ctrl)
				walk(x.Body, prog.IDOf(x))
			case *ast.SwitchStmt:
				record(prog, parents, x, ctrl)
				walk(x.Body, prog.IDOf(x))
			case *ast.CaseClause:
				for _, st := range x.Body {
					walk(st, ctrl)
				}
			case *ast.BlockStmt:
				for _, st := range x.List {
					walk(st, ctrl)
				}
			case ast.Stmt:
				record(prog, parents, x, ctrl)
			}
		}
		walk(fn.Body, script.NoStmt)
	}
	return parents
}

func record(prog *script.Program, parents map[script.StmtID]script.StmtID, st ast.Stmt, ctrl script.StmtID) {
	if id := prog.IDOf(st); id != script.NoStmt {
		parents[id] = ctrl
	}
}

// identifyState extracts the replicated state units from a trace.
func identifyState(app *httpapp.App, tr *Trace) StateUnits {
	var u StateUnits
	tables := map[string]bool{}
	files := map[string]bool{}
	fileWrites := map[string]bool{}
	sqlStmts := map[script.StmtID]bool{}
	fileStmts := map[script.StmtID]bool{}

	for _, iv := range tr.Invokes {
		for _, arg := range iv.Args {
			if IsSQLCommand(arg) {
				sqlStmts[iv.Stmt] = true
				for _, t := range SQLTables(arg.(string)) {
					tables[t] = true
				}
			}
		}
		if strings.HasPrefix(iv.Fn, "fs.") && len(iv.Args) > 0 {
			if IsFilePath(iv.Args[0]) {
				fileStmts[iv.Stmt] = true
				if p, ok := iv.Args[0].(string); ok {
					files[p] = true
					if iv.Fn == "fs.write" || iv.Fn == "fs.remove" {
						fileWrites[p] = true
					}
				}
			}
		}
	}

	// Shadow-execution results: which tables the run actually mutated.
	writeTables := map[string]bool{}
	for _, dm := range tr.DBMutations {
		writeTables[dm.Mutation.Table] = true
		tables[dm.Mutation.Table] = true
		if dm.Stmt != script.NoStmt {
			sqlStmts[dm.Stmt] = true
		}
	}

	globals := map[string]bool{}
	globalWrites := map[string]bool{}
	declared := map[string]bool{}
	for _, g := range app.Program().GlobalNames() {
		declared[g] = true
	}
	for _, ev := range tr.RW {
		if !declared[ev.Var] {
			continue
		}
		globals[ev.Var] = true
		if ev.Write {
			globalWrites[ev.Var] = true
		}
	}

	u.WriteTables = setToSorted(writeTables)
	u.FileWrites = setToSorted(fileWrites)
	u.Tables = setToSorted(tables)
	u.Files = setToSorted(files)
	u.Globals = setToSorted(globals)
	u.GlobalWrites = setToSorted(globalWrites)
	u.SQLStmts = sortedStmts(sqlStmts)
	u.FileStmts = sortedStmts(fileStmts)
	return u
}

func setToSorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AnalyzeApp analyzes every inferred service and merges the state
// units. Services are analyzed concurrently by a worker pool sized to
// runtime.GOMAXPROCS(0); see AnalyzeAppContext for the configuration
// knob and the ordering guarantee.
func (a *Analyzer) AnalyzeApp(services []capture.Service) ([]*ServiceAnalysis, StateUnits, error) {
	return a.AnalyzeAppContext(context.Background(), services, Parallelism{})
}
