package analysis

import (
	"fmt"
	"testing"

	"repro/internal/script"
	"repro/internal/workload"
)

// TestTraceParityAcrossEvaluators re-collects the RW-LOG traces that
// feed the whole analysis pipeline under both evaluators — the bytecode
// VM and the tree-walking reference — and requires identical statement
// order, RW facts, invoke records, and DB shadow-mutations. The
// downstream analyses (dependence facts, SQL/file detection, extract
// candidates) are pure functions of these traces, so trace equality
// pins pipeline equality.
func TestTraceParityAcrossEvaluators(t *testing.T) {
	for _, name := range []string{"notes", "bookworm", "sensor-hub"} {
		t.Run(name, func(t *testing.T) {
			subj, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			vmApp, err := subj.NewApp()
			if err != nil {
				t.Fatal(err)
			}
			refApp, err := subj.NewApp()
			if err != nil {
				t.Fatal(err)
			}
			refApp.Interp().SetReferenceEval(true)

			for ri, req := range subj.RegressionVectors() {
				vmTr := Collect(vmApp, req)
				refTr := Collect(refApp, req)
				if got, want := renderTrace(vmTr), renderTrace(refTr); got != want {
					t.Fatalf("request %d (%s %s): trace diverged:\n--- vm ---\n%s\n--- ref ---\n%s",
						ri, req.Method, req.Path, got, want)
				}
			}
		})
	}
}

// renderTrace flattens a trace into a canonical text form for
// comparison (values via script.ToString, which sorts map keys).
func renderTrace(tr *Trace) string {
	out := "stmts:"
	for _, id := range tr.StmtOrder {
		out += fmt.Sprintf(" %d", id)
	}
	out += "\nrw:\n"
	for _, ev := range tr.RW {
		kind := "R"
		if ev.Write {
			kind = "W"
		}
		out += fmt.Sprintf("  %d %s %d %s %s\n", ev.Step, kind, ev.Stmt, ev.Var, script.ToString(ev.Val))
	}
	out += "invokes:\n"
	for _, iv := range tr.Invokes {
		out += fmt.Sprintf("  %d %d %s/%d %s\n", iv.Step, iv.Stmt, iv.Fn, len(iv.Args), script.ToString(iv.Result))
	}
	out += "db:\n"
	for _, dm := range tr.DBMutations {
		out += fmt.Sprintf("  %d %+v\n", dm.Stmt, dm.Mutation)
	}
	if tr.Err != nil {
		out += "err: " + tr.Err.Error() + "\n"
	}
	return out
}
