package analysis

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/capture"
	"repro/internal/httpapp"
	"repro/internal/script"
)

// predictSrc mirrors the paper's Figure 4 example: a /predict service
// whose application logic is not delineated at a function boundary. The
// normalized temporaries tv1 (unmarshal) and tv2 (marshal) bracket it.
const predictSrc = `
var hits = 0
var model = map[string]any{"threshold": 50}

func init() any {
	db.exec("CREATE TABLE results (id INT PRIMARY KEY, score INT)")
	fs.write("model/weights.bin", "pretrained")
	return nil
}

func predict(req any, res any) any {
	tv1 := req.body()
	weights := fs.read("model/weights.bin")
	feat := bytes.hash(tv1) + bytes.sum(weights)
	score := detect(feat)
	hits = hits + 1
	db.exec("INSERT INTO results (id, score) VALUES (?, ?)", hits, score)
	tv2 := score
	res.send(tv2)
	return nil
}

func detect(f any) any {
	cpu(100)
	return f - floor(f/97)*97
}

func stats(req any, res any) any {
	rows := db.query("SELECT count(*) FROM results")
	res.send(rows[0])
	return nil
}`

var predictRoutes = []httpapp.Route{
	{Method: "POST", Path: "/predict", Handler: "predict"},
	{Method: "GET", Path: "/stats", Handler: "stats"},
}

func newPredictApp(t *testing.T) *httpapp.App {
	t.Helper()
	app, err := httpapp.New("fobojet", predictSrc, predictRoutes)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func predictSample() capture.Record {
	return capture.Record{
		Method:   "POST",
		Path:     "/predict",
		ReqBody:  []byte("image-payload-0123456789-image-payload"),
		Status:   200,
		RespBody: []byte("1"),
	}
}

func TestCollectTrace(t *testing.T) {
	app := newPredictApp(t)
	tr := Collect(app, &httpapp.Request{Method: "POST", Path: "/predict", Body: []byte("img")})
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	if len(tr.StmtOrder) == 0 || len(tr.RW) == 0 || len(tr.Invokes) == 0 {
		t.Fatalf("empty trace: stmts=%d rw=%d inv=%d", len(tr.StmtOrder), len(tr.RW), len(tr.Invokes))
	}
	// db.exec with the INSERT must appear with inspectable args.
	found := false
	for _, iv := range tr.Invokes {
		if iv.Fn == "db.exec" && len(iv.Args) > 0 && IsSQLCommand(iv.Args[0]) {
			found = true
		}
	}
	if !found {
		t.Fatal("SQL invocation not observed")
	}
	// Hooks are removed after collection.
	if _, _, err := app.Invoke(&httpapp.Request{Method: "GET", Path: "/stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeServiceEntryExit(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "POST", Pattern: "/predict", Samples: []capture.Record{predictSample()}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Handler != "predict" {
		t.Fatalf("handler = %q", sa.Handler)
	}
	if sa.EntryVar != "tv1" {
		t.Fatalf("entry var = %q, want tv1 (stmt %d: %s)", sa.EntryVar, sa.Entry, app.Program().StmtText(sa.Entry))
	}
	if !strings.Contains(app.Program().StmtText(sa.Entry), "req.body()") {
		t.Fatalf("entry stmt = %q", app.Program().StmtText(sa.Entry))
	}
	if !strings.Contains(app.Program().StmtText(sa.Exit), "res.send") {
		t.Fatalf("exit stmt = %q", app.Program().StmtText(sa.Exit))
	}
	if sa.ExitVar != "tv2" {
		t.Fatalf("exit var = %q, want tv2", sa.ExitVar)
	}
}

func TestAnalyzeServiceExtractionClosure(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "POST", Pattern: "/predict", Samples: []capture.Record{predictSample()}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	prog := app.Program()
	var texts []string
	for _, id := range sa.Extracted {
		texts = append(texts, prog.StmtText(id))
	}
	joined := strings.Join(texts, "\n")
	for _, want := range []string{"tv1 := req.body()", "feat :=", "score := detect(feat)", "db.exec", "tv2 := score", "res.send(tv2)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("extraction missing %q:\n%s", want, joined)
		}
	}
	// Extracted statements all belong to the handler.
	for _, id := range sa.Extracted {
		if prog.FuncOf(id) != "predict" {
			t.Fatalf("extracted stmt %d belongs to %q", id, prog.FuncOf(id))
		}
	}
}

func TestAnalyzeServiceStateUnits(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "POST", Pattern: "/predict", Samples: []capture.Record{predictSample()}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa.State.Tables, []string{"results"}) {
		t.Fatalf("tables = %v", sa.State.Tables)
	}
	if !reflect.DeepEqual(sa.State.Files, []string{"model/weights.bin"}) {
		t.Fatalf("files = %v", sa.State.Files)
	}
	if !containsStr(sa.State.Globals, "hits") {
		t.Fatalf("globals = %v", sa.State.Globals)
	}
	if !containsStr(sa.State.GlobalWrites, "hits") {
		t.Fatalf("global writes = %v", sa.State.GlobalWrites)
	}
	// model is read-only here and wasn't touched by predict — it must
	// not be claimed as written.
	if containsStr(sa.State.GlobalWrites, "model") {
		t.Fatal("read-only global reported as written")
	}
	if len(sa.State.SQLStmts) == 0 || len(sa.State.FileStmts) == 0 {
		t.Fatalf("state stmts: sql=%v file=%v", sa.State.SQLStmts, sa.State.FileStmts)
	}
}

func TestAnalyzeParameterlessService(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "GET", Pattern: "/stats", Samples: []capture.Record{{
		Method: "GET", Path: "/stats", Status: 200, RespBody: []byte(`{"count(*)":0}`),
	}}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Handler != "stats" || sa.Entry == script.NoStmt || sa.Exit == script.NoStmt {
		t.Fatalf("analysis = %+v", sa)
	}
	if !reflect.DeepEqual(sa.State.Tables, []string{"results"}) {
		t.Fatalf("tables = %v", sa.State.Tables)
	}
}

func TestAnalyzeQueryParamService(t *testing.T) {
	src := `
func greet(req any, res any) any {
	name := req.param("who")
	msg := "hello " + name
	res.send(msg)
	return nil
}`
	app, err := httpapp.New("greeter", src, []httpapp.Route{{Method: "GET", Path: "/greet", Handler: "greet"}})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "GET", Pattern: "/greet", Samples: []capture.Record{{
		Method: "GET", Path: "/greet",
		Query:  map[string]string{"who": "ann"},
		Status: 200, RespBody: []byte(`"hello ann"`),
	}}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	if sa.EntryVar != "name" {
		t.Fatalf("entry var = %q, want name", sa.EntryVar)
	}
	if sa.ExitVar != "msg" {
		t.Fatalf("exit var = %q, want msg", sa.ExitVar)
	}
}

func TestAnalyzeAppMergesState(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	services := []capture.Service{
		{Method: "POST", Pattern: "/predict", Samples: []capture.Record{predictSample()}},
		{Method: "GET", Pattern: "/stats", Samples: []capture.Record{{
			Method: "GET", Path: "/stats", Status: 200, RespBody: []byte(`{}`),
		}}},
	}
	results, merged, err := an.AnalyzeApp(services)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if !reflect.DeepEqual(merged.Tables, []string{"results"}) {
		t.Fatalf("merged tables = %v", merged.Tables)
	}
	if !containsStr(merged.Globals, "hits") {
		t.Fatalf("merged globals = %v", merged.Globals)
	}
}

func TestAnalysisLeavesStateClean(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "POST", Pattern: "/predict", Samples: []capture.Record{predictSample()}}
	if _, err := an.AnalyzeService(svc); err != nil {
		t.Fatal(err)
	}
	// After analysis (base + fuzz executions), state is back at init.
	if v, _ := app.Interp().GetGlobal("hits"); v != 0.0 {
		t.Fatalf("hits = %v after analysis, want 0 (state isolation)", v)
	}
	n, _ := app.DB().RowCount("results")
	if n != 0 {
		t.Fatalf("rows = %d after analysis, want 0", n)
	}
}

func TestIsSQLCommand(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM t", "insert into t (a) values (1)", "START TRANSACTION",
		"ROLLBACK", "  UPDATE t SET a = 1",
	} {
		if !IsSQLCommand(q) {
			t.Fatalf("IsSQLCommand(%q) = false", q)
		}
	}
	for _, v := range []any{"hello world", "SELECTED item", 5.0, nil, "model/weights.bin"} {
		if IsSQLCommand(v) {
			t.Fatalf("IsSQLCommand(%v) = true", v)
		}
	}
}

func TestSQLTables(t *testing.T) {
	tests := []struct {
		q    string
		want []string
	}{
		{"SELECT * FROM books WHERE id = 1", []string{"books"}},
		{"INSERT INTO orders (id) VALUES (1)", []string{"orders"}},
		{"UPDATE users SET name = 'x'", []string{"users"}},
		{"CREATE TABLE visits (id INT)", []string{"visits"}},
		{"CREATE TABLE IF NOT EXISTS logs (msg TEXT)", []string{"logs"}},
		{"DELETE FROM cache", []string{"cache"}},
		{"ROLLBACK", nil},
	}
	for _, tt := range tests {
		if got := SQLTables(tt.q); !reflect.DeepEqual(got, tt.want) {
			t.Fatalf("SQLTables(%q) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestIsFilePath(t *testing.T) {
	for _, p := range []string{"model/weights.bin", "file:///etc/x", "data.csv", "a/b/c"} {
		if !IsFilePath(p) {
			t.Fatalf("IsFilePath(%q) = false", p)
		}
	}
	for _, v := range []any{"hello world", "", 5.0, "v1.2", "SELECT x"} {
		if IsFilePath(v) {
			t.Fatalf("IsFilePath(%v) = true", v)
		}
	}
}

func TestContainsValue(t *testing.T) {
	if !ContainsValue("xxFZV0001yy", "FZV0001") {
		t.Fatal("string containment")
	}
	if !ContainsValue([]byte("abFZV0002cd"), []byte("FZV0002")) {
		t.Fatal("byte containment")
	}
	if !ContainsValue(770003.0, 770003.0) {
		t.Fatal("number equality")
	}
	if !ContainsValue("x=770004", 770004.0) {
		t.Fatal("number-in-string")
	}
	if !ContainsValue(script.NewList("a", map[string]any{"k": "FZV0005"}), "FZV0005") {
		t.Fatal("nested containment")
	}
	if ContainsValue("clean", "FZV0009") || ContainsValue(nil, "x") {
		t.Fatal("false positive")
	}
	// A long repeated marker is detected inside a shorter fragment.
	marker := []byte(strings.Repeat("FZV0007", 10))
	if !ContainsValue([]byte("xxFZV0007yyzzwwqq"), marker) {
		t.Fatal("fragment of repeated marker not detected")
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestShadowExecutionAttributesWrites(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "POST", Pattern: "/predict", Samples: []capture.Record{predictSample()}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	// /predict INSERTs into results: the shadow execution must attribute
	// the mutation and classify results as a write table.
	if !reflect.DeepEqual(sa.State.WriteTables, []string{"results"}) {
		t.Fatalf("WriteTables = %v, want [results]", sa.State.WriteTables)
	}
}

func TestShadowExecutionReadOnlyService(t *testing.T) {
	app := newPredictApp(t)
	an := NewAnalyzer(app)
	svc := capture.Service{Method: "GET", Pattern: "/stats", Samples: []capture.Record{{
		Method: "GET", Path: "/stats", Status: 200, RespBody: []byte(`{}`),
	}}}
	sa, err := an.AnalyzeService(svc)
	if err != nil {
		t.Fatal(err)
	}
	// stats only SELECTs: results is a read table, not a write table.
	if len(sa.State.WriteTables) != 0 {
		t.Fatalf("WriteTables = %v, want none for a read-only service", sa.State.WriteTables)
	}
	if !reflect.DeepEqual(sa.State.Tables, []string{"results"}) {
		t.Fatalf("Tables = %v", sa.State.Tables)
	}
}

func TestCollectLeavesNoProbe(t *testing.T) {
	app := newPredictApp(t)
	Collect(app, &httpapp.Request{Method: "POST", Path: "/predict", Body: []byte("x")})
	// A later direct DB write must not panic or record anywhere.
	if _, err := app.DB().Exec("INSERT INTO results (id, score) VALUES (99, 1)"); err != nil {
		t.Fatal(err)
	}
}
