// Package simclock provides a deterministic discrete-event virtual clock.
//
// All performance experiments in this repository run on virtual time:
// network transfers, service executions, and power-state transitions are
// scheduled as events on a Clock rather than measured against the wall
// clock. This makes the evaluation harness fast (a 10-minute scenario
// completes in milliseconds) and fully deterministic.
//
// A Clock is not safe for concurrent use; simulations are single-threaded
// event loops by design, which is what makes their outcomes reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event virtual clock. Events scheduled with the same
// firing time run in scheduling order (FIFO), which keeps runs
// deterministic. The zero value is ready to use.
type Clock struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	events uint64 // total events fired, for diagnostics
}

// New returns a Clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// EventsFired reports how many events the clock has dispatched.
func (c *Clock) EventsFired() uint64 { return c.events }

// Timer is a handle to a scheduled event. It can be stopped before firing.
type Timer struct {
	when    time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 once fired or removed
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() time.Duration { return t.when }

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

// After schedules fn to run d after the current virtual time. A negative d
// is treated as zero. The returned Timer may be used to cancel the event.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic error in the simulation, and firing such an
// event would silently reorder time.
func (c *Clock) At(t time.Duration, fn func()) *Timer {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", t, c.now))
	}
	if fn == nil {
		panic("simclock: nil event function")
	}
	c.seq++
	tm := &Timer{when: t, seq: c.seq, fn: fn}
	heap.Push(&c.queue, tm)
	return tm
}

// Step fires the next pending event, advancing the clock to its firing
// time. It reports whether an event was fired.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		tm, _ := heap.Pop(&c.queue).(*Timer)
		tm.index = -1
		if tm.stopped {
			continue
		}
		c.now = tm.when
		c.events++
		tm.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil fires all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled during processing are fired too,
// provided they fall within the window.
func (c *Clock) RunUntil(t time.Duration) {
	if t < c.now {
		return
	}
	for c.queue.Len() > 0 {
		next := c.queue[0]
		if next.stopped {
			heap.Pop(&c.queue)
			next.index = -1
			continue
		}
		if next.when > t {
			break
		}
		c.Step()
	}
	c.now = t
}

// Advance runs the clock forward by d, firing everything that falls due.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.RunUntil(c.now + d)
}

// Pending reports how many live (non-stopped) events are queued.
func (c *Clock) Pending() int {
	n := 0
	for _, tm := range c.queue {
		if !tm.stopped {
			n++
		}
	}
	return n
}

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	tm, _ := x.(*Timer)
	tm.index = len(*q)
	*q = append(*q, tm)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return tm
}
