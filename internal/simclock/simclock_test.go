package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	fired := false
	c.After(time.Second, func() { fired = true })
	c.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if c.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", c.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Millisecond, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must fire FIFO)", i, v, i)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	c := New()
	var got []time.Duration
	delays := []time.Duration{5, 1, 3, 2, 4}
	for _, d := range delays {
		d := d * time.Millisecond
		c.After(d, func() { got = append(got, c.Now()) })
	}
	c.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(got), len(delays))
	}
}

func TestStopCancels(t *testing.T) {
	c := New()
	fired := false
	tm := c.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Run()
	if fired {
		t.Fatal("stopped event fired")
	}
}

func TestRunUntilAdvancesExactly(t *testing.T) {
	c := New()
	var at []time.Duration
	c.After(10*time.Millisecond, func() { at = append(at, c.Now()) })
	c.After(30*time.Millisecond, func() { at = append(at, c.Now()) })
	c.RunUntil(20 * time.Millisecond)
	if len(at) != 1 || at[0] != 10*time.Millisecond {
		t.Fatalf("fired %v, want exactly the 10ms event", at)
	}
	if c.Now() != 20*time.Millisecond {
		t.Fatalf("Now() = %v, want 20ms", c.Now())
	}
	c.Run()
	if len(at) != 2 {
		t.Fatalf("fired %d events after Run, want 2", len(at))
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var seen []time.Duration
	c.After(time.Millisecond, func() {
		seen = append(seen, c.Now())
		c.After(time.Millisecond, func() {
			seen = append(seen, c.Now())
		})
	})
	c.Run()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(seen) != 2 || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("seen = %v, want %v", seen, want)
	}
}

func TestRunUntilIncludesNestedWithinWindow(t *testing.T) {
	c := New()
	count := 0
	c.After(time.Millisecond, func() {
		count++
		c.After(time.Millisecond, func() { count++ })    // at 2ms, inside window
		c.After(10*time.Millisecond, func() { count++ }) // at 11ms, outside
	})
	c.RunUntil(5 * time.Millisecond)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (nested in-window event must fire)", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.After(time.Second, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	c.At(time.Millisecond, func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	fired := time.Duration(-1)
	c.After(-time.Minute, func() { fired = c.Now() })
	c.Run()
	if fired != time.Second {
		t.Fatalf("fired at %v, want 1s (now)", fired)
	}
}

func TestPendingCount(t *testing.T) {
	c := New()
	t1 := c.After(time.Second, func() {})
	c.After(2*time.Second, func() {})
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	t1.Stop()
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() after Stop = %d, want 1", got)
	}
}

// Property: for any batch of delays, events fire in nondecreasing time
// order and the clock ends at the max delay.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		c := New()
		var fireTimes []time.Duration
		var max time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			if d > max {
				max = d
			}
			c.After(d, func() { fireTimes = append(fireTimes, c.Now()) })
		}
		c.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		return c.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Stop calls never loses or duplicates the
// remaining events.
func TestPropertyStopExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c := New()
		n := 1 + rng.Intn(40)
		fired := 0
		timers := make([]*Timer, n)
		for i := range timers {
			timers[i] = c.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() { fired++ })
		}
		stopped := 0
		for _, tm := range timers {
			if rng.Intn(2) == 0 && tm.Stop() {
				stopped++
			}
		}
		c.Run()
		if fired != n-stopped {
			t.Fatalf("trial %d: fired %d, want %d", trial, fired, n-stopped)
		}
	}
}

func BenchmarkSchedule(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			c.Run()
		}
	}
	c.Run()
}
