// Elastic demonstrates the §IV-D edge cluster: a transformed sensor-
// analytics service on four Raspberry Pi replicas behind a least-
// connections balancer, with the elasticity controller powering
// replicas down as the client request volume falls. The example reports
// per-phase latency, the controller's scaling decisions, and the energy
// saved against an always-on cluster.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netem"
	"repro/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elastic:", err)
		os.Exit(1)
	}
}

func run() error {
	res, sub, err := experiments.TransformSubject("sensor-hub")
	if err != nil {
		return err
	}
	fmt.Printf("transformed %s: %d services replicated\n\n", res.Name, len(res.ReplicatedServiceNames()))

	type mode struct {
		name      string
		autoscale bool
	}
	var energies [2]float64
	for mi, m := range []mode{{"always-on (4 replicas)", false}, {"elastic controller", true}} {
		clock := simclock.New()
		dep, err := core.Deploy(clock, res, core.DefaultDeployConfig())
		if err != nil {
			return err
		}
		var scaler *cluster.Autoscaler
		if m.autoscale {
			scaler, err = cluster.NewAutoscaler(clock, dep.Balancer, 4, 500*time.Millisecond)
			if err != nil {
				return err
			}
			scaler.Start()
		}
		lan, err := netem.NewDuplex(clock, netem.LAN, 31)
		if err != nil {
			return err
		}
		client := cluster.NewClient(clock, cluster.MobileSpec, lan)

		// Busy phase: 120 RPS for 10 s. Quiet phase: 4 RPS for 50 s.
		cluster.OpenLoop(clock, 120, 1200, func(i int) {
			client.SendVia(sub.SampleRequest(sub.Primary, i, 77), dep.HandleAtEdge, nil)
		})
		for i := 0; i < 200; i++ {
			i := i
			clock.At(10*time.Second+time.Duration(i)*250*time.Millisecond, func() {
				client.SendVia(sub.SampleRequest(sub.Primary, 1200+i, 77), dep.HandleAtEdge, nil)
			})
		}
		clock.RunUntil(62 * time.Second)
		if scaler != nil {
			scaler.Stop()
		}
		dep.Stop()

		var edgeJ float64
		active := 0
		for _, e := range dep.Edges {
			edgeJ += e.Server.Node.Energy.Joules()
			if e.Server.Node.Active() {
				active++
			}
		}
		energies[mi] = edgeJ
		fmt.Printf("%s\n", m.name)
		fmt.Printf("  completed %d requests, mean latency %.1f ms (p95 %.1f ms)\n",
			client.Completed, client.Latency.Mean(), client.Latency.Percentile(95))
		fmt.Printf("  edge energy %.1f J; replicas active at end: %d/4\n", edgeJ, active)
		if scaler != nil {
			fmt.Printf("  controller made %d scaling transitions\n", scaler.Transitions())
		}
		fmt.Println()
	}
	fmt.Printf("elastic power-down saved %.1f%% of edge energy (paper: 12.96%%)\n",
		(energies[0]-energies[1])/energies[0]*100)
	return nil
}
