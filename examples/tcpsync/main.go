// Tcpsync runs the synchronization protocol over real TCP sockets — the
// analog of the paper's socket.io channel between the cloud master and
// its edge replicas. A transformed sensor-analytics service is deployed
// as three live instances in this process (one cloud master, two edge
// replicas), connected over loopback TCP; edge-served requests
// synchronize to the cloud and to the sibling edge within a few sync
// ticks.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/crdt"
	"repro/internal/experiments"
	"repro/internal/httpapp"
	"repro/internal/statesync"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcpsync:", err)
		os.Exit(1)
	}
}

func run() error {
	res, sub, err := experiments.TransformSubject("sensor-hub")
	if err != nil {
		return err
	}

	// Cloud master: normalized app + seeded CRDT state.
	cloudApp, err := httpapp.New(res.Name, res.NormalizedSource, res.Routes)
	if err != nil {
		return err
	}
	res.InitState.Restore(cloudApp)
	cloudState, err := statesync.NewReplicaState("cloud")
	if err != nil {
		return err
	}
	cloudBind, err := statesync.Bind(cloudApp, cloudState, res.Units)
	if err != nil {
		return err
	}
	master, err := statesync.ServeMaster("127.0.0.1:0",
		&statesync.Endpoint{Name: "cloud", State: cloudState, Binding: cloudBind},
		20*time.Millisecond)
	if err != nil {
		return err
	}
	defer func() { _ = master.Close() }()
	fmt.Println("cloud master listening on", master.Addr())

	// Two edge replicas: generated source + forked snapshots, dialing in.
	type edgeT struct {
		app  *httpapp.App
		tcp  *statesync.TCPEdge
		bind *statesync.Binding
	}
	var edges []edgeT
	for i := 1; i <= 2; i++ {
		app, err := httpapp.New(fmt.Sprintf("%s-replica%d", res.Name, i), res.ReplicaSource, res.Routes)
		if err != nil {
			return err
		}
		var st *statesync.ReplicaState
		master.Do(func() {
			st, err = cloudState.Fork(crdt.ActorID(fmt.Sprintf("edge%d", i)))
		})
		if err != nil {
			return err
		}
		bind, err := statesync.BindReplica(app, st, res.Units)
		if err != nil {
			return err
		}
		tcp, err := statesync.DialEdge(master.Addr(),
			&statesync.Endpoint{Name: fmt.Sprintf("edge%d", i), State: st, Binding: bind},
			20*time.Millisecond)
		if err != nil {
			return err
		}
		edges = append(edges, edgeT{app: app, tcp: tcp, bind: bind})
		fmt.Printf("edge replica %d connected\n", i)
	}
	defer func() {
		for _, e := range edges {
			_ = e.tcp.Close()
		}
	}()

	// Edge 1 ingests three sensor batches locally.
	for i := 0; i < 3; i++ {
		req := sub.SampleRequest(sub.Primary, i, 2024)
		var resp *httpapp.Response
		edges[0].tcp.Do(func() {
			resp, _, err = edges[0].app.Invoke(req)
			if err == nil {
				err = edges[0].bind.MirrorGlobals()
			}
		})
		if err != nil {
			return err
		}
		fmt.Printf("edge1 served POST /ingest → %s\n", resp.Body)
	}

	// Wait for the changes to reach the cloud and the sibling edge.
	if err := waitRows(master, cloudApp, edges[1].tcp, edges[1].app, 3); err != nil {
		return err
	}
	fmt.Println("cloud and edge2 hold 3 readings — converged over TCP")

	// Fault tolerance: kill the master and bring a new one up on the
	// same address and state. The edges' supervisors reconnect with
	// backoff and re-handshake from the CRDT heads — no edge restarts,
	// and the next batch flows as if nothing happened.
	addr := master.Addr()
	if err := master.Close(); err != nil {
		return err
	}
	fmt.Println("cloud master killed; restarting on", addr)
	master, err = statesync.ServeMaster(addr,
		&statesync.Endpoint{Name: "cloud", State: cloudState, Binding: cloudBind},
		20*time.Millisecond)
	if err != nil {
		return err
	}
	defer func() { _ = master.Close() }()

	req := sub.SampleRequest(sub.Primary, 3, 2024)
	edges[0].tcp.Do(func() {
		_, _, err = edges[0].app.Invoke(req)
		if err == nil {
			err = edges[0].bind.MirrorGlobals()
		}
	})
	if err != nil {
		return err
	}
	if err := waitRows(master, cloudApp, edges[1].tcp, edges[1].app, 4); err != nil {
		return err
	}
	st := edges[0].tcp.Status()
	fmt.Printf("converged again after master restart (edge1 state=%s reconnects=%d)\n",
		st.State, st.Reconnects)
	fmt.Printf("edge1 transport: %+v\n", edges[0].tcp.Stats())
	return nil
}

// waitRows polls until both the cloud and the sibling edge hold want
// readings rows.
func waitRows(master *statesync.TCPMaster, cloudApp *httpapp.App, edge2 *statesync.TCPEdge, edge2App *httpapp.App, want int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var n, n2 int
		master.Do(func() { n, _ = cloudApp.DB().RowCount("readings") })
		edge2.Do(func() { n2, _ = edge2App.DB().RowCount("readings") })
		if n == want && n2 == want {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("did not reach %d readings within deadline", want)
}
