// Objdet reenacts the paper's motivating example (§II-A): a
// mission-critical image object-detection app whose cloud service may be
// hosted on the same continent, a neighboring continent, or — after the
// EdgStr transformation — replicated on Raspberry Pi-class devices one
// hop away. The example prints the latency a security-monitoring client
// would observe under each placement.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/netem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "objdet:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		subject = "fobojet"
		n       = 20
		rps     = 4.0
	)
	type placement struct {
		name string
		desc string
		cfg  netem.Config
		edge bool
	}
	placements := []placement{
		{"same-continent cloud", "cloud region co-located with the client", netem.SameContinent, false},
		{"cross-continent cloud", "nearest neighboring continent (the paper's Heroku test)", netem.CrossContinent, false},
		{"congested WAN cloud", "limited cloud network, 500 Kbps / 400 ms", netem.LimitedWAN(500, 400), false},
		{"EdgStr edge cluster", "Pi replicas one LAN hop away, sync over the congested WAN", netem.LimitedWAN(500, 400), true},
	}

	fmt.Println("camera frames: 64 KB each;", n, "captures at", rps, "frames/s")
	fmt.Println()
	var baseline float64
	for _, p := range placements {
		var (
			res *experiments.ScenarioResult
			err error
		)
		if p.edge {
			res, err = experiments.RunEdge(subject, p.cfg, n, rps, experiments.EdgeOptions{})
		} else {
			res, err = experiments.RunCloud(subject, p.cfg, n, rps)
		}
		if err != nil {
			return err
		}
		mean := res.Latency.Mean()
		if baseline == 0 {
			baseline = mean
		}
		fmt.Printf("%-24s mean=%8.1f ms  p95=%8.1f ms  (%.1fx vs same-continent)\n",
			p.name, mean, res.Latency.Percentile(95), mean/baseline)
		fmt.Printf("%24s %s\n", "", p.desc)
	}
	fmt.Println()
	fmt.Println("the mission-critical latency budget survives only with edge replicas —")
	fmt.Println("exactly the motivation the paper opens with.")
	return nil
}
