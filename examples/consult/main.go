// Consult demonstrates the paper's Consult Developer step (§III-D):
// EdgStr isolates the state each service would replicate and presents
// it to the developer, who decides per service whether eventual
// consistency is acceptable. Here the developer accepts read-heavy
// bookstore services but keeps checkout — where overselling stock would
// be a real inconsistency — on the strongly consistent cloud master.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/edgstr"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consult:", err)
		os.Exit(1)
	}
}

func run() error {
	sub, err := workload.ByName("bookworm")
	if err != nil {
		return err
	}
	app, err := sub.NewApp()
	if err != nil {
		return err
	}
	records, err := edgstr.CaptureTraffic(app, sub.RegressionVectors())
	if err != nil {
		return err
	}

	fmt.Println("Consult Developer: per-service eventual-consistency decisions")
	result, err := edgstr.Transform(edgstr.Input{
		Name: sub.Name, Source: sub.Source, Routes: sub.Routes(), Records: records,
		Consult: func(svc edgstr.Service, units edgstr.StateUnits) bool {
			// The developer reviews the isolated state EdgStr presents…
			fmt.Printf("  %-16s touches tables=%v globals=%v → ", svc.Name(), units.Tables, units.Globals)
			// …and rejects replication for the write paths that must not
			// diverge (checkout decrements shared stock).
			accept := svc.Method == "GET"
			if accept {
				fmt.Println("replicate (eventual consistency acceptable)")
			} else {
				fmt.Println("keep on cloud (strong consistency required)")
			}
			return accept
		},
	})
	if err != nil {
		return err
	}

	clock := edgstr.NewClock()
	cfg := edgstr.DefaultDeployConfig()
	cfg.WAN = edgstr.LimitedWAN(800, 250)
	dep, err := edgstr.Deploy(clock, result, cfg)
	if err != nil {
		return err
	}

	show := func(req *edgstr.Request) {
		start := clock.Now()
		dep.HandleAtEdge(req, func(resp *edgstr.Response, err error) {
			status := "ok"
			if err != nil {
				status = err.Error()
			}
			fmt.Printf("  %-4s %-10s served in %6.1f ms (%s)\n",
				req.Method, req.Path, float64(clock.Now()-start)/float64(time.Millisecond), status)
		})
		clock.RunUntil(clock.Now() + 5*time.Second)
	}

	fmt.Println("\nServing clients through the edge proxy:")
	show(&edgstr.Request{Method: "GET", Path: "/books"})                                // replicated: edge-local
	show(&edgstr.Request{Method: "POST", Path: "/checkout", Body: []byte(`{"id": 1}`)}) // forwarded to cloud

	var forwarded, local int64
	for _, e := range dep.Edges {
		forwarded += e.Forwarded
		local += e.ServedLocally
	}
	dep.Stop()
	fmt.Printf("\nedge-local executions: %d, forwarded to cloud master: %d\n", local, forwarded)
	fmt.Println("reads ride the LAN; the consistency-critical write crossed the WAN.")
	return nil
}
