// Quickstart: transform a tiny client-cloud note-taking service into a
// client-edge-cloud deployment in three steps — capture, transform,
// deploy — then watch an edge-served write synchronize back to the
// cloud.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/edgstr"
)

const source = `
var count = 0

func init() any {
	db.exec("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)")
	return nil
}

func addNote(req any, res any) any {
	tv1 := req.json()
	count = count + 1
	db.exec("INSERT INTO notes (id, text) VALUES (?, ?)", count, tv1["text"])
	tv2 := map[string]any{"id": count}
	res.send(tv2)
	return nil
}

func listNotes(req any, res any) any {
	rows := db.query("SELECT * FROM notes ORDER BY id")
	res.send(rows)
	return nil
}`

var routes = []edgstr.Route{
	{Method: "POST", Path: "/notes", Handler: "addNote"},
	{Method: "GET", Path: "/notes", Handler: "listNotes"},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Step 1 — attach to the running two-tier app and capture traffic.
	app, err := edgstr.NewApp("notes", source, routes)
	if err != nil {
		return err
	}
	var sample []*edgstr.Request
	for i := 0; i < 3; i++ {
		sample = append(sample,
			&edgstr.Request{Method: "POST", Path: "/notes", Body: []byte(`{"text": "hello"}`)},
			&edgstr.Request{Method: "GET", Path: "/notes"},
		)
	}
	records, err := edgstr.CaptureTraffic(app, sample)
	if err != nil {
		return err
	}
	fmt.Printf("captured %d exchanges\n", len(records))

	// Step 2 — transform.
	result, err := edgstr.Transform(edgstr.Input{
		Name: "notes", Source: source, Routes: routes, Records: records,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replicating services: %v\n", result.ReplicatedServiceNames())
	fmt.Printf("replicated state: tables=%v globals=%v\n",
		result.Units.Tables, result.Units.Globals)

	// Step 3 — deploy on a simulated edge cluster and serve a client at
	// the edge over a slow WAN.
	clock := edgstr.NewClock()
	cfg := edgstr.DefaultDeployConfig()
	cfg.WAN = edgstr.LimitedWAN(500, 300)
	dep, err := edgstr.Deploy(clock, result, cfg)
	if err != nil {
		return err
	}
	dep.HandleAtEdge(&edgstr.Request{Method: "POST", Path: "/notes", Body: []byte(`{"text": "from the edge"}`)},
		func(resp *edgstr.Response, err error) {
			if err != nil {
				fmt.Println("edge request failed:", err)
				return
			}
			fmt.Printf("edge response: %s\n", resp.Body)
		})
	clock.RunUntil(2 * time.Second)

	// The CRDT runtime synchronizes the edge write back to the cloud in
	// the background.
	dep.SettleSync(60 * time.Second)
	dep.Stop()
	n, err := dep.Cloud.App.DB().RowCount("notes")
	if err != nil {
		return err
	}
	fmt.Printf("cloud now holds %d note(s); converged=%v\n", n, dep.Converged())
	return nil
}
