package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/crdt"
	"repro/internal/durable"
	"repro/internal/statesync"
)

// statesyncReport is the schema of BENCH_statesync.json: the
// high-throughput replication path measured end to end — WAL group
// commit scaling with concurrent writers, pooled vs baseline change
// encoding, and TCP replication throughput across frame batch sizes
// and compression settings.
type statesyncReport struct {
	// GroupCommit is Append throughput on one FsyncAlways store vs
	// concurrent writer count; the writers=8 over writers=1 ratio is the
	// group-commit win (each batch shares a single fsync).
	GroupCommit []groupCommitBench `json:"group_commit"`
	// Encode contrasts the allocating encoder with the pooled zero-copy
	// path on the same 64-change batch.
	Encode encodePair `json:"encode"`
	// TCP is wall-clock replication of a fixed change volume from one
	// edge to the master over loopback, per frame-batching/compression
	// configuration.
	TCP []tcpBench `json:"tcp"`
}

type groupCommitBench struct {
	Writers    int     `json:"writers"`
	Appends    int     `json:"appends"`
	AppendsSec float64 `json:"appends_sec"`
	// GroupCommits is the number of fsync rounds that carried those
	// appends; Appends/GroupCommits is the mean commit batch.
	GroupCommits int64 `json:"group_commits"`
	// SpeedupX is AppendsSec over the writers=1 baseline.
	SpeedupX float64 `json:"speedup_x"`
}

type encodeBench struct {
	NsOp     int64 `json:"ns_op"`
	BytesOp  int64 `json:"bytes_op"`
	AllocsOp int64 `json:"allocs_op"`
}

type encodePair struct {
	Baseline encodeBench `json:"baseline"`
	Pooled   encodeBench `json:"pooled"`
}

type tcpBench struct {
	BatchChanges int  `json:"batch_changes"`
	Compression  bool `json:"compression"`
	Changes      int  `json:"changes"`
	// ChangesSec is replicated changes per wall-clock second (commit on
	// the edge through convergence at the master); BytesSec is the edge
	// outbound wire rate over the same window.
	ChangesSec float64 `json:"changes_sec"`
	BytesSec   float64 `json:"bytes_sec"`
	BytesSent  int64   `json:"bytes_sent"`
	FramesSent int64   `json:"frames_sent"`
	OpsElided  int64   `json:"ops_elided"`
}

// benchGroupCommit measures concurrent Append throughput under
// FsyncAlways: every writer appends perWriter single-change records.
func benchGroupCommit(dir string, writers, perWriter int) (groupCommitBench, error) {
	type rec struct{ chs []crdt.Change }
	work := make([][]rec, writers)
	for w := 0; w < writers; w++ {
		d := crdt.NewDoc(crdt.ActorID(fmt.Sprintf("gc%d", w)))
		prev := 0
		for i := 0; i < perWriter; i++ {
			if err := d.PutScalar(crdt.RootObj, "k", float64(i)); err != nil {
				return groupCommitBench{}, err
			}
			d.Commit("")
			chs := d.GetChanges(nil)
			work[w] = append(work[w], rec{chs[prev:]})
			prev = len(chs)
		}
	}
	st, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		return groupCommitBench{}, err
	}
	defer st.Close()
	errs := make([]error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, r := range work[w] {
				if err := st.Append("json", r.chs); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return groupCommitBench{}, err
		}
	}
	total := writers * perWriter
	return groupCommitBench{
		Writers:      writers,
		Appends:      total,
		AppendsSec:   float64(total) / elapsed.Seconds(),
		GroupCommits: st.Stats().GroupCommits,
	}, nil
}

// benchEncode contrasts EncodeChangesBinary (one allocation per call)
// with the pooled buffer path (zero steady-state allocations).
func benchEncode() encodePair {
	d := crdt.NewDoc("enc")
	for i := 0; i < 64; i++ {
		_ = d.PutScalar(crdt.RootObj, fmt.Sprintf("k%d", i%8), float64(i))
		_ = d.PutScalar(crdt.RootObj, "seq", float64(i))
		d.Commit("")
	}
	chs := d.GetChanges(nil)
	toBench := func(res testing.BenchmarkResult) encodeBench {
		return encodeBench{
			NsOp:     res.NsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
			AllocsOp: res.AllocsPerOp(),
		}
	}
	base := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = crdt.EncodeChangesBinary(chs)
		}
	})
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := crdt.GetEncodeBuffer()
			_ = buf.AppendChanges(chs)
			buf.Release()
		}
	})
	return encodePair{Baseline: toBench(base), Pooled: toBench(pooled)}
}

// benchTCP replicates `changes` committed changes from one edge to the
// master over loopback and reports throughput for the given transport
// settings.
func benchTCP(changes, batch int, compression bool) (tcpBench, error) {
	master, err := statesync.NewReplicaState("bench-cloud")
	if err != nil {
		return tcpBench{}, err
	}
	cfg := statesync.DefaultTCPConfig(2 * time.Millisecond)
	cfg.MaxBatchChanges = batch
	cfg.Compression = compression
	srv, err := statesync.ServeMasterConfig("127.0.0.1:0", &statesync.Endpoint{Name: "cloud", State: master}, cfg)
	if err != nil {
		return tcpBench{}, err
	}
	defer srv.Close()
	st, err := master.Fork("bench-edge")
	if err != nil {
		return tcpBench{}, err
	}
	edge, err := statesync.DialEdgeConfig(srv.Addr(), &statesync.Endpoint{Name: "edge", State: st}, cfg)
	if err != nil {
		return tcpBench{}, err
	}
	defer edge.Close()

	start := time.Now()
	edge.Do(func() {
		for i := 0; i < changes; i++ {
			// A modestly wide payload per change so compression has
			// something to bite on; distinct keys so coalescing does not
			// collapse the volume under the batching measurement.
			if err := st.JSON.PutScalar("root", fmt.Sprintf("key-%06d", i), float64(i)); err != nil {
				return
			}
			st.JSON.Commit("bench payload: edge-originated state update")
		}
	})
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		conv := false
		srv.Do(func() { edge.Do(func() { conv = master.Converged(st) }) })
		if conv {
			break
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	es := edge.Stats()
	return tcpBench{
		BatchChanges: batch,
		Compression:  compression,
		Changes:      changes,
		ChangesSec:   float64(changes) / elapsed.Seconds(),
		BytesSec:     float64(es.BytesSent) / elapsed.Seconds(),
		BytesSent:    es.BytesSent,
		FramesSent:   es.FramesSent,
		OpsElided:    es.OpsElided,
	}, nil
}

// runBenchStatesync measures the replication path and writes the
// report to outPath.
func runBenchStatesync(outPath string) error {
	var rep statesyncReport

	gcDir, err := os.MkdirTemp("", "edgstr-bench-gc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(gcDir)
	for _, writers := range []int{1, 2, 4, 8} {
		gb, err := benchGroupCommit(fmt.Sprintf("%s/w%d", gcDir, writers), writers, 200)
		if err != nil {
			return fmt.Errorf("group commit bench (%d writers): %w", writers, err)
		}
		rep.GroupCommit = append(rep.GroupCommit, gb)
	}
	base := rep.GroupCommit[0].AppendsSec
	for i := range rep.GroupCommit {
		rep.GroupCommit[i].SpeedupX = rep.GroupCommit[i].AppendsSec / base
	}

	rep.Encode = benchEncode()

	for _, c := range []struct {
		batch    int
		compress bool
	}{
		{1, false},
		{16, false},
		{64, false},
		{64, true},
	} {
		tb, err := benchTCP(2000, c.batch, c.compress)
		if err != nil {
			return fmt.Errorf("tcp bench (batch=%d compress=%v): %w", c.batch, c.compress, err)
		}
		rep.TCP = append(rep.TCP, tb)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	for _, g := range rep.GroupCommit {
		fmt.Printf("group commit (%d writers): %.0f appends/sec (%.1fx, %d rounds)\n",
			g.Writers, g.AppendsSec, g.SpeedupX, g.GroupCommits)
	}
	fmt.Printf("encode: baseline %d allocs/op, pooled %d allocs/op\n",
		rep.Encode.Baseline.AllocsOp, rep.Encode.Pooled.AllocsOp)
	for _, tb := range rep.TCP {
		fmt.Printf("tcp (batch=%2d compress=%-5v): %.0f changes/sec, %.0f bytes/sec\n",
			tb.BatchChanges, tb.Compression, tb.ChangesSec, tb.BytesSec)
	}
	fmt.Println("wrote", outPath)
	return nil
}
