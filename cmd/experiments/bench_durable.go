package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/crdt"
	"repro/internal/durable"
)

// durableReport is the schema of BENCH_durable.json: the WAL append
// throughput under each fsync policy and the recovery-time curve as the
// log grows. Recorded so durability-layer regressions are visible in
// review alongside BENCH_pipeline.json.
type durableReport struct {
	Append []appendBench `json:"append"`
	// Recovery is the Open() cost as a function of WAL length, measured
	// on logs written without compaction (worst case: full replay).
	Recovery []recoveryBench `json:"recovery"`
}

type appendBench struct {
	Fsync string `json:"fsync"`
	// NsOp is the cost of one Append of a single committed change,
	// including the frame encode, write, and (policy-dependent) sync.
	NsOp       int64   `json:"ns_op"`
	AppendsSec float64 `json:"appends_sec"`
	BytesOp    int64   `json:"bytes_op"`
}

type recoveryBench struct {
	Frames int `json:"frames"`
	// RecoveryMS is the wall-clock Open() recovery time (snapshot load +
	// frame replay + state rebuild) for a WAL of this length.
	RecoveryMS float64 `json:"recovery_ms"`
	Replayed   int     `json:"replayed_frames"`
}

// benchChanges builds n single-change records to feed the WAL.
func benchChanges(n int) ([][]crdt.Change, error) {
	d := crdt.NewDoc("bench")
	out := make([][]crdt.Change, 0, n)
	prev := 0
	for i := 0; i < n; i++ {
		if err := d.PutScalar(crdt.RootObj, "k", float64(i)); err != nil {
			return nil, err
		}
		d.Commit("")
		chs := d.GetChanges(nil)
		out = append(out, chs[prev:])
		prev = len(chs)
	}
	return out, nil
}

// benchAppend measures one-change Append calls under the given policy.
func benchAppend(dir string, policy durable.FsyncPolicy) (testing.BenchmarkResult, error) {
	records, err := benchChanges(1)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var openErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		st, err := durable.Open(filepath.Join(dir, policy.String(), fmt.Sprint(b.N)), durable.Options{
			Fsync:      policy,
			FsyncEvery: 10 * time.Millisecond,
		})
		if err != nil {
			openErr = err
			b.Skip(err)
		}
		defer st.Close()
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Append("json", records[0]); err != nil {
				openErr = err
				b.Skip(err)
			}
		}
	})
	return res, openErr
}

// benchRecovery writes a WAL of n frames, closes it, and times Open.
func benchRecovery(dir string, n int) (recoveryBench, error) {
	sub := filepath.Join(dir, fmt.Sprintf("recover-%d", n))
	records, err := benchChanges(n)
	if err != nil {
		return recoveryBench{}, err
	}
	st, err := durable.Open(sub, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		return recoveryBench{}, err
	}
	for _, rec := range records {
		if err := st.Append("json", rec); err != nil {
			st.Close()
			return recoveryBench{}, err
		}
	}
	if err := st.Close(); err != nil {
		return recoveryBench{}, err
	}
	st2, err := durable.Open(sub, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		return recoveryBench{}, err
	}
	defer st2.Close()
	rec := st2.Recovery()
	return recoveryBench{
		Frames:     n,
		RecoveryMS: float64(rec.Duration.Microseconds()) / 1000,
		Replayed:   rec.ReplayedFrames,
	}, nil
}

// runBenchDurable measures the durability layer and writes the report
// to outPath.
func runBenchDurable(outPath string) error {
	dir, err := os.MkdirTemp("", "edgstr-bench-durable-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var rep durableReport
	for _, policy := range []durable.FsyncPolicy{durable.FsyncAlways, durable.FsyncInterval, durable.FsyncNever} {
		res, err := benchAppend(dir, policy)
		if err != nil {
			return fmt.Errorf("append bench (%s): %w", policy, err)
		}
		ns := res.NsPerOp()
		rep.Append = append(rep.Append, appendBench{
			Fsync:      policy.String(),
			NsOp:       ns,
			AppendsSec: 1e9 / float64(ns),
			BytesOp:    res.AllocedBytesPerOp(),
		})
	}
	for _, n := range []int{100, 1000, 5000, 20000} {
		rb, err := benchRecovery(dir, n)
		if err != nil {
			return fmt.Errorf("recovery bench (%d frames): %w", n, err)
		}
		rep.Recovery = append(rep.Recovery, rb)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	for _, a := range rep.Append {
		fmt.Printf("wal append (%-8s): %.0f appends/sec\n", a.Fsync, a.AppendsSec)
	}
	for _, r := range rep.Recovery {
		fmt.Printf("recovery (%6d frames): %.2fms\n", r.Frames, r.RecoveryMS)
	}
	fmt.Println("wrote", outPath)
	return nil
}
