// Command experiments regenerates the paper's tables and figures on the
// simulated testbed and prints the same rows/series the paper reports.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table2
//	experiments -exp rtt|fig6b|fig7|fig8|fig9|fig10a|fig10b|accuracy|ablations
//	experiments -exp bench -benchout BENCH_pipeline.json -durableout BENCH_durable.json -statesyncout BENCH_statesync.json -serveout BENCH_serve.json -placementout BENCH_placement.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, rtt, table2, table2full, fig6b, fig7, fig8, fig9, fig10a, fig10b, accuracy, ablations, bench, benchserve")
	benchOut := flag.String("benchout", "BENCH_pipeline.json", "output path for the -exp bench perf report")
	durableOut := flag.String("durableout", "BENCH_durable.json", "output path for the -exp bench durability report")
	statesyncOut := flag.String("statesyncout", "BENCH_statesync.json", "output path for the -exp bench replication report")
	serveOut := flag.String("serveout", "BENCH_serve.json", "output path for the -exp bench serve-path report")
	placementOut := flag.String("placementout", "BENCH_placement.json", "output path for the -exp bench placement report")
	flag.Parse()
	if *exp == "benchserve" {
		if err := runBenchServe(*serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "bench" {
		if err := runBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := runBenchDurable(*durableOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := runBenchStatesync(*statesyncOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := runBenchServe(*serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := runBenchPlacement(*placementOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type runner struct {
	name string
	fn   func() error
}

func run(which string) error {
	table := func(t *experiments.Table, err error) error {
		if t != nil {
			fmt.Println(t.Render())
		}
		return err
	}
	all := []runner{
		{"rtt", func() error { return table(experiments.MotivationRTT()) }},
		{"table2", func() error { t, _, err := experiments.Table2(); return table(t, err) }},
		{"table2full", func() error { return table(experiments.Table2Full()) }},
		{"fig6b", func() error { t, _, err := experiments.Fig6b(); return table(t, err) }},
		{"fig7", func() error { t, _, err := experiments.Fig7(); return table(t, err) }},
		{"fig8", func() error { t, _, err := experiments.Fig8(); return table(t, err) }},
		{"fig9", func() error {
			t, _, err := experiments.Fig9Left()
			if err2 := table(t, err); err2 != nil {
				return err2
			}
			t2, _, err := experiments.Fig9Right()
			return table(t2, err)
		}},
		{"fig10a", func() error { t, _, err := experiments.Fig10a(); return table(t, err) }},
		{"fig10b", func() error { t, _, err := experiments.Fig10b(); return table(t, err) }},
		{"accuracy", func() error { t, _, err := experiments.AnalysisAccuracy(); return table(t, err) }},
		{"ablations", func() error {
			t, err := experiments.AblationDeltaVsFullSync()
			if err2 := table(t, err); err2 != nil {
				return err2
			}
			t2, err := experiments.AblationLBPolicy()
			if err2 := table(t2, err); err2 != nil {
				return err2
			}
			t3, err := experiments.AblationSyncInterval()
			return table(t3, err)
		}},
	}
	if which == "all" {
		for _, r := range all {
			fmt.Printf("--- %s ---\n", r.name)
			if err := r.fn(); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
		}
		return nil
	}
	for _, r := range all {
		if r.name == which {
			return r.fn()
		}
	}
	return fmt.Errorf("unknown experiment %q", which)
}
