package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpapp"
	"repro/internal/placement"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// placementReport is the schema of BENCH_placement.json: the Datalog
// decision latency across topology sizes, and the control loop's
// convergence behaviour (rounds from a workload shift to a stable
// assignment) on a live deployment.
type placementReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Decisions holds one row per synthetic topology size.
	Decisions []placementDecisionRow `json:"decisions"`

	// Convergence holds one row per phase of the shifting-workload run.
	Convergence []placementConvergenceRow `json:"convergence"`
}

type placementDecisionRow struct {
	Services int `json:"services"`
	Edges    int `json:"edges"`
	// Facts is the ground-fact count loaded per decision; DatalogRounds
	// the fixpoint iterations.
	Facts         int `json:"facts"`
	DatalogRounds int `json:"datalog_rounds"`

	NsPerDecision   int64   `json:"ns_per_decision"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

type placementConvergenceRow struct {
	// Phase names the workload change: warmup (cold start to first
	// placement), shift (demand moves to a different service), cooldown
	// (demand stops).
	Phase string `json:"phase"`
	// Rounds is how many control rounds the loop needed to reach the
	// phase's stable assignment.
	Rounds int64 `json:"rounds"`
	// Promotions/Retractions are the cumulative counters when the phase
	// stabilized.
	Promotions  int64 `json:"promotions"`
	Retractions int64 `json:"retractions"`
}

// synthInput builds a mixed fact snapshot: a third of the services hot,
// a third warm (and assigned round-robin), a third cold (assigned too,
// so they produce retract work).
func synthInput(services, edges int) placement.Input {
	in := placement.Input{Assigned: map[string][]string{}}
	for e := 0; e < edges; e++ {
		in.Edges = append(in.Edges, placement.Edge{Name: fmt.Sprintf("edge-%d", e), Connected: true})
	}
	for s := 0; s < services; s++ {
		name := fmt.Sprintf("GET /svc/%d", s)
		var req int64
		switch s % 3 {
		case 0:
			req = 100 // hot
		case 1:
			req = 10 // warm
		default:
			req = 0 // cold
		}
		in.Services = append(in.Services, placement.Service{Name: name, Requests: req})
		if s%3 != 0 {
			edge := in.Edges[s%edges].Name
			in.Assigned[edge] = append(in.Assigned[edge], name)
		}
	}
	return in
}

// benchDecision measures one topology size's Decide latency.
func benchDecision(services, edges int) (placementDecisionRow, error) {
	ctrl, err := placement.New(placement.Thresholds{HotRequests: 50, ColdRequests: 5}, "")
	if err != nil {
		return placementDecisionRow{}, err
	}
	in := synthInput(services, edges)
	probe, err := ctrl.Decide(in)
	if err != nil {
		return placementDecisionRow{}, err
	}
	runtime.GC()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctrl.Decide(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	return placementDecisionRow{
		Services:        services,
		Edges:           edges,
		Facts:           probe.Facts,
		DatalogRounds:   probe.Stats.Rounds,
		NsPerDecision:   res.NsPerOp(),
		DecisionsPerSec: 1e9 / float64(res.NsPerOp()),
		AllocsPerOp:     res.AllocsPerOp(),
	}, nil
}

// benchConvergence deploys bookworm under the placement loop and drives
// a shifting workload: sustained demand on GET /books, then the demand
// moves to GET /books/:id, then stops. Each phase reports the control
// rounds until the assignment stabilizes at the expected shape.
func benchConvergence() ([]placementConvergenceRow, error) {
	sub, err := workload.ByName("bookworm")
	if err != nil {
		return nil, err
	}
	res, err := core.TransformSubjectTraffic(sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors())
	if err != nil {
		return nil, err
	}
	clock := simclock.New()
	cfg := core.DefaultDeployConfig()
	cfg.Placement = core.PlacementConfig{
		Enabled:    true,
		Interval:   time.Second,
		Thresholds: placement.Thresholds{HotRequests: 3, ColdRequests: 1},
	}
	d, err := core.Deploy(clock, res, cfg)
	if err != nil {
		return nil, err
	}
	defer d.Stop()

	const maxRounds = 20
	// stepUntil drives one traffic burst per control round (service < 0
	// means silence) and counts rounds until done holds.
	stepUntil := func(service int, done func(core.PlacementObservation) bool) (int64, error) {
		for round := int64(1); round <= maxRounds; round++ {
			if service >= 0 {
				at := clock.Now() + 500*time.Millisecond
				for i := 0; i < 5; i++ {
					req := sub.SampleRequest(service, i, 11)
					clock.At(at, func() { d.HandleAtEdge(req, func(*httpapp.Response, error) {}) })
				}
			}
			clock.RunUntil(clock.Now() + time.Second)
			if done(d.Placement.Observation()) {
				return round, nil
			}
		}
		return 0, fmt.Errorf("no convergence within %d rounds", maxRounds)
	}
	everyEdgeHosts := func(po core.PlacementObservation, n int) bool {
		if len(po.Assignments) != len(d.Edges) {
			return false
		}
		for _, svcs := range po.Assignments {
			if len(svcs) != n {
				return false
			}
		}
		return true
	}

	var rows []placementConvergenceRow
	record := func(phase string, rounds int64) {
		po := d.Placement.Observation()
		rows = append(rows, placementConvergenceRow{
			Phase: phase, Rounds: rounds,
			Promotions: po.Promotions, Retractions: po.Retractions,
		})
	}

	// Warmup: cold start until GET /books is on every edge.
	rounds, err := stepUntil(0, func(po core.PlacementObservation) bool {
		return everyEdgeHosts(po, 1)
	})
	if err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	record("warmup", rounds)
	base := d.Placement.Observation()

	// Shift: demand moves to GET /books/:id; stable once the old service
	// drained everywhere (one retraction per edge) and each edge hosts
	// exactly the new one.
	rounds, err = stepUntil(1, func(po core.PlacementObservation) bool {
		return everyEdgeHosts(po, 1) && po.Retractions >= base.Retractions+int64(len(d.Edges))
	})
	if err != nil {
		return nil, fmt.Errorf("shift: %w", err)
	}
	record("shift", rounds)

	// Cooldown: demand stops; stable once nothing is assigned or
	// draining.
	rounds, err = stepUntil(-1, func(po core.PlacementObservation) bool {
		return len(po.Assignments) == 0 && len(po.Draining) == 0
	})
	if err != nil {
		return nil, fmt.Errorf("cooldown: %w", err)
	}
	record("cooldown", rounds)
	return rows, nil
}

// runBenchPlacement measures the placement engine and writes the report
// to outPath.
func runBenchPlacement(outPath string) error {
	var rep placementReport
	rep.NumCPU = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	for _, tc := range []struct{ services, edges int }{
		{6, 4}, {50, 16}, {200, 64},
	} {
		row, err := benchDecision(tc.services, tc.edges)
		if err != nil {
			return err
		}
		rep.Decisions = append(rep.Decisions, row)
		fmt.Printf("placement decide %d services × %d edges: %.1fµs (%.0f decisions/s, %d facts, %d datalog rounds)\n",
			row.Services, row.Edges, float64(row.NsPerDecision)/1e3, row.DecisionsPerSec, row.Facts, row.DatalogRounds)
	}

	conv, err := benchConvergence()
	if err != nil {
		return err
	}
	rep.Convergence = conv
	for _, row := range conv {
		fmt.Printf("placement converge %-8s %d round(s) (promotions=%d retractions=%d)\n",
			row.Phase, row.Rounds, row.Promotions, row.Retractions)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}
