package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/workload"
)

// benchReport is the schema of BENCH_pipeline.json: the perf
// trajectory of the transformation pipeline and its Datalog solver,
// recorded from PR 1 onward so regressions are visible in review.
type benchReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	Pipeline struct {
		Subject        string  `json:"subject"`
		SequentialNsOp int64   `json:"sequential_ns_op"`
		ParallelNsOp   int64   `json:"parallel_ns_op"`
		Speedup        float64 `json:"speedup"`
		AllocsOp       int64   `json:"allocs_op"`
	} `json:"pipeline"`

	DatalogJoin struct {
		NaiveNsOp       int64   `json:"naive_ns_op"`
		IndexedNsOp     int64   `json:"indexed_ns_op"`
		Speedup         float64 `json:"speedup"`
		NaiveAllocsOp   int64   `json:"naive_allocs_op"`
		IndexedAllocsOp int64   `json:"indexed_allocs_op"`
		AllocsRatio     float64 `json:"allocs_ratio"`
	} `json:"datalog_join"`
}

// joinDB builds the transitive-closure workload both join paths are
// measured on: a layered dependence graph (the shape of the paper's
// STMT-T-DEP closure, with the path fan-in a real dependence graph
// has), ready for Run.
func joinDB(reference bool) (*datalog.DB, error) {
	db := datalog.NewDB()
	db.SetReferenceJoin(reference)
	const layers, width = 7, 5
	node := func(l, w int) string { return "s" + strconv.Itoa(l*width+w) }
	for l := 0; l+1 < layers; l++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				if _, err := db.AddFact("dep", node(l+1, b), node(l, a)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := db.AddRule(datalog.NewRule(
		datalog.NewAtom("tdep", datalog.V("X"), datalog.V("Y")),
		datalog.NewAtom("dep", datalog.V("X"), datalog.V("Y")),
	)); err != nil {
		return nil, err
	}
	if err := db.AddRule(datalog.NewRule(
		datalog.NewAtom("tdep", datalog.V("X"), datalog.V("Z")),
		datalog.NewAtom("dep", datalog.V("X"), datalog.V("Y")),
		datalog.NewAtom("tdep", datalog.V("Y"), datalog.V("Z")),
	)); err != nil {
		return nil, err
	}
	return db, nil
}

// benchJoin measures only the Run (join + derivation) phase; DB
// construction happens with the timer stopped.
func benchJoin(reference bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, err := joinDB(reference)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := db.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runBench measures the pipeline sequential vs parallel and the
// Datalog join naive vs indexed, then writes the report to outPath.
func runBench(outPath string) error {
	sub, err := workload.ByName("fobojet")
	if err != nil {
		return err
	}
	seqRes := benchPipeline(sub, 1)
	parRes := benchPipeline(sub, 0)
	naive := benchJoin(true)
	indexed := benchJoin(false)

	var rep benchReport
	rep.NumCPU = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Pipeline.Subject = sub.Name
	rep.Pipeline.SequentialNsOp = seqRes.NsPerOp()
	rep.Pipeline.ParallelNsOp = parRes.NsPerOp()
	rep.Pipeline.Speedup = float64(seqRes.NsPerOp()) / float64(parRes.NsPerOp())
	rep.Pipeline.AllocsOp = parRes.AllocsPerOp()
	rep.DatalogJoin.NaiveNsOp = naive.NsPerOp()
	rep.DatalogJoin.IndexedNsOp = indexed.NsPerOp()
	rep.DatalogJoin.Speedup = float64(naive.NsPerOp()) / float64(indexed.NsPerOp())
	rep.DatalogJoin.NaiveAllocsOp = naive.AllocsPerOp()
	rep.DatalogJoin.IndexedAllocsOp = indexed.AllocsPerOp()
	rep.DatalogJoin.AllocsRatio = float64(naive.AllocsPerOp()) / float64(indexed.AllocsPerOp())

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("pipeline: sequential %.2fms, parallel %.2fms (%.2fx, %d workers)\n",
		float64(rep.Pipeline.SequentialNsOp)/1e6, float64(rep.Pipeline.ParallelNsOp)/1e6,
		rep.Pipeline.Speedup, rep.GOMAXPROCS)
	fmt.Printf("datalog join: naive %d allocs/op, indexed %d allocs/op (%.1fx fewer), %.2fx faster\n",
		rep.DatalogJoin.NaiveAllocsOp, rep.DatalogJoin.IndexedAllocsOp,
		rep.DatalogJoin.AllocsRatio, rep.DatalogJoin.Speedup)
	fmt.Println("wrote", outPath)
	return nil
}

func benchPipeline(sub workload.Subject, workers int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.TransformSubjectTrafficContext(
				context.Background(), sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}
