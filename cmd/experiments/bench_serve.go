package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapp"
	"repro/internal/script"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// serveReport is the schema of BENCH_serve.json: the edge serve-path
// throughput of the script interpreter's bytecode VM against the
// tree-walking reference evaluator, per example app, plus the VM's
// own counters for the run.
type serveReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Serve holds one row per benchmarked subject service.
	Serve []serveRow `json:"serve"`

	// ReadSweep holds the reader/writer scheduler sweep: sensor-hub
	// traffic at several worker counts and read ratios, driving
	// Server.Invoke concurrently. Read throughput should scale with
	// workers (up to GOMAXPROCS); the serialized write path bounds the
	// mixed rows.
	ReadSweep []rwRow `json:"read_sweep"`

	// VM snapshots the script.* counters after the run.
	VM script.VMStats `json:"vm"`
}

type serveRow struct {
	Subject string `json:"subject"`
	Service string `json:"service"`

	CompiledNsOp int64 `json:"compiled_ns_op"`
	TreeWalkNsOp int64 `json:"treewalk_ns_op"`
	// Speedup is tree-walk time over compiled time (higher is better).
	Speedup float64 `json:"speedup"`

	CompiledRPS float64 `json:"compiled_requests_per_sec"`
	TreeWalkRPS float64 `json:"treewalk_requests_per_sec"`

	CompiledAllocsOp int64   `json:"compiled_allocs_op"`
	TreeWalkAllocsOp int64   `json:"treewalk_allocs_op"`
	AllocRatio       float64 `json:"alloc_ratio"`

	CompiledBytesOp int64 `json:"compiled_bytes_op"`
	TreeWalkBytesOp int64 `json:"treewalk_bytes_op"`
}

type rwRow struct {
	Workers   int     `json:"workers"`
	ReadRatio float64 `json:"read_ratio"`

	Requests       int64   `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// ReadRequestsPerSec counts only invocations that completed on the
	// shared read path — the number the CI scaling gate pins.
	ReadRequestsPerSec float64 `json:"read_requests_per_sec"`

	Reads       int64 `json:"reads"`
	Writes      int64 `json:"writes"`
	Mispredicts int64 `json:"mispredicts"`
}

// rwRequestPools splits a subject's sample requests into read-only and
// mutating pools, cloned per worker so concurrent invocations never
// share a *Request.
func rwRequestPools(subj workload.Subject, n int) (reads, writes []*httpapp.Request) {
	for k, svc := range subj.Services {
		for i := 0; i < n; i++ {
			req := subj.SampleRequest(k, i, 42)
			if svc.Mutates {
				writes = append(writes, req)
			} else {
				reads = append(reads, req)
			}
		}
	}
	return reads, writes
}

// benchReadSweepCell measures one (workers, readRatio) cell: workers
// goroutines loop over Server.Invoke with the static route classifier
// active, mixing reads and writes at the requested ratio, for a fixed
// wall-clock budget. Each cell rebuilds the stack so a previous cell's
// writes do not hand the next one a bigger store.
func benchReadSweepCell(subj workload.Subject, workers int, readRatio float64, budget time.Duration) (rwRow, error) {
	app, err := subj.NewApp()
	if err != nil {
		return rwRow{}, err
	}
	server := cluster.NewServer("edge0", cluster.NewNode(simclock.New(), cluster.RPi4Spec), app)
	server.ReadOnly = app.RequestReadOnly
	reads, writes := rwRequestPools(subj, 8)
	// Warm the store so read services have fixed data to chew on.
	for _, req := range writes {
		if _, _, err := server.Invoke(req); err != nil {
			return rwRow{}, err
		}
	}
	r0, w0, m0 := server.RWStats()

	// Deterministic mix: each worker cycles a 20-request window with
	// round((1-ratio)*20) writes up front.
	const window = 20
	writesPerWindow := int((1-readRatio)*window + 0.5)

	runtime.GC()
	var total int64
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(budget)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rp := make([]*httpapp.Request, len(reads))
			for i, req := range reads {
				rp[i] = req.Clone()
			}
			wp := make([]*httpapp.Request, len(writes))
			for i, req := range writes {
				wp[i] = req.Clone()
			}
			var n int64
			for i := 0; ; i++ {
				// Check the clock every window to keep time.Now off the
				// per-request path.
				if i%window == 0 && time.Now().After(deadline) {
					break
				}
				var req *httpapp.Request
				if i%window < writesPerWindow {
					req = wp[(w+i)%len(wp)]
				} else {
					req = rp[(w+i)%len(rp)]
				}
				if _, _, err := server.Invoke(req); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					break
				}
				n++
			}
			atomic.AddInt64(&total, n)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return rwRow{}, firstErr
	}
	r1, w1, m1 := server.RWStats()
	return rwRow{
		Workers:            workers,
		ReadRatio:          readRatio,
		Requests:           total,
		RequestsPerSec:     float64(total) / elapsed.Seconds(),
		ReadRequestsPerSec: float64(r1-r0) / elapsed.Seconds(),
		Reads:              r1 - r0,
		Writes:             w1 - w0,
		Mispredicts:        m1 - m0,
	}, nil
}

// runReadSweep drives the sensor-hub subject through the worker ×
// read-ratio grid.
func runReadSweep(rep *serveReport) error {
	subj, err := workload.ByName("sensor-hub")
	if err != nil {
		return err
	}
	for _, workers := range []int{1, 2, 4} {
		for _, ratio := range []float64{0.5, 0.95, 1.0} {
			row, err := benchReadSweepCell(subj, workers, ratio, 400*time.Millisecond)
			if err != nil {
				return err
			}
			rep.ReadSweep = append(rep.ReadSweep, row)
			fmt.Printf("read-sweep workers=%d ratio=%.2f: %.0f req/s (%.0f read req/s), %d reads / %d writes / %d mispredicts\n",
				row.Workers, row.ReadRatio, row.RequestsPerSec, row.ReadRequestsPerSec,
				row.Reads, row.Writes, row.Mispredicts)
		}
	}
	return nil
}

// benchServeSubject measures the full edge serve path (server handle,
// script execution, simulated node latency) for one subject service on
// one evaluator. The store is warmed with writes first so the measured
// service has a fixed amount of data to chew on and read-only
// benchmarks do not grow their own workload with b.N.
func benchServeSubject(subj workload.Subject, service int, refEval bool) (testing.BenchmarkResult, error) {
	// Each sample gets a fresh stack because write services grow their
	// own store with b.N — reusing one stack would hand a later sample a
	// bigger table to chew on.
	app, err := subj.NewApp()
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	app.Interp().SetReferenceEval(refEval)
	clock := simclock.New()
	server := cluster.NewServer("edge0", cluster.NewNode(clock, cluster.RPi4Spec), app)
	discard := func(*httpapp.Response, time.Duration, error) {}
	for i := 0; i < 32; i++ {
		server.Handle(subj.SampleRequest(i%len(subj.Services), i, 42), discard)
		clock.Run()
	}
	req := subj.SampleRequest(service, 0, 42)
	// Settle the heap so one sample's garbage doesn't tax the next
	// sample's timing (the whole report runs in one process).
	runtime.GC()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			server.Handle(req, discard)
			clock.Run()
		}
	}), nil
}

// benchServePair samples both evaluators in alternating passes and keeps
// each side's best (minimum ns/op) result. The report runs on whatever
// machine is at hand, and a single sample is hostage to scheduler and GC
// noise; alternating the passes makes slow phases of the host tax both
// evaluators instead of whichever one happened to run during them.
func benchServePair(subj workload.Subject, service int) (compiled, tree testing.BenchmarkResult, err error) {
	for pass := 0; pass < 3; pass++ {
		c, cerr := benchServeSubject(subj, service, false)
		if cerr != nil {
			return compiled, tree, cerr
		}
		t, terr := benchServeSubject(subj, service, true)
		if terr != nil {
			return compiled, tree, terr
		}
		if pass == 0 || c.NsPerOp() < compiled.NsPerOp() {
			compiled = c
		}
		if pass == 0 || t.NsPerOp() < tree.NsPerOp() {
			tree = t
		}
	}
	return compiled, tree, nil
}

// serviceByPath finds a subject service by route path (falling back to
// the primary service when path is empty).
func serviceByPath(subj workload.Subject, path string) (int, error) {
	if path == "" {
		return subj.Primary, nil
	}
	for i, svc := range subj.Services {
		if svc.Route.Path == path {
			return i, nil
		}
	}
	return 0, fmt.Errorf("subject %s has no service %s", subj.Name, path)
}

// runBenchServe measures compiled vs tree-walk serving for the example
// apps and writes the report to outPath. The sensor-hub ingest row is
// the headline number: its summarize loop over the posted samples makes
// it the interpreter-bound service class the paper targets. The
// db-bound rows (summary, notes, bookworm) bound the other end, where
// the interpreter is a small fraction of the request and the two
// evaluators converge.
func runBenchServe(outPath string) error {
	var rep serveReport
	rep.NumCPU = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	cases := []struct {
		subject string
		path    string
	}{
		{"sensor-hub", "/ingest"},
		{"sensor-hub", "/summary"},
		{"notes", ""},
		{"bookworm", ""},
	}
	for _, tc := range cases {
		subj, err := workload.ByName(tc.subject)
		if err != nil {
			return err
		}
		service, err := serviceByPath(subj, tc.path)
		if err != nil {
			return err
		}
		compiled, tree, err := benchServePair(subj, service)
		if err != nil {
			return err
		}
		row := serveRow{
			Subject:          subj.Name,
			Service:          subj.Services[service].Route.Path,
			CompiledNsOp:     compiled.NsPerOp(),
			TreeWalkNsOp:     tree.NsPerOp(),
			Speedup:          float64(tree.NsPerOp()) / float64(compiled.NsPerOp()),
			CompiledRPS:      1e9 / float64(compiled.NsPerOp()),
			TreeWalkRPS:      1e9 / float64(tree.NsPerOp()),
			CompiledAllocsOp: compiled.AllocsPerOp(),
			TreeWalkAllocsOp: tree.AllocsPerOp(),
			AllocRatio:       float64(tree.AllocsPerOp()) / float64(compiled.AllocsPerOp()),
			CompiledBytesOp:  compiled.AllocedBytesPerOp(),
			TreeWalkBytesOp:  tree.AllocedBytesPerOp(),
		}
		rep.Serve = append(rep.Serve, row)
		fmt.Printf("serve %s %s: compiled %.1fµs (%.0f req/s), tree-walk %.1fµs (%.0f req/s) — %.2fx faster, %.2fx fewer allocs\n",
			row.Subject, row.Service,
			float64(row.CompiledNsOp)/1e3, row.CompiledRPS,
			float64(row.TreeWalkNsOp)/1e3, row.TreeWalkRPS,
			row.Speedup, row.AllocRatio)
	}
	if err := runReadSweep(&rep); err != nil {
		return err
	}
	rep.VM = script.ReadVMStats()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}
