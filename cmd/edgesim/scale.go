package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/scalesim"
)

// runScale executes the star-vs-fabric sweep and writes the
// BENCH_scale.json report.
func runScale(clients, reqPer int, edgeList string, groups int, seed int64, out string) error {
	var points []int
	for _, part := range strings.Split(edgeList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad edge count %q", part)
		}
		points = append(points, n)
	}
	fmt.Printf("scale sweep: clients=%d edges=%v seed=%d\n", clients, points, seed)
	rep, err := scalesim.Bench(scalesim.BenchConfig{
		Clients:           clients,
		EdgePoints:        points,
		Groups:            groups,
		Seed:              seed,
		RequestsPerClient: reqPer,
		Progress:          func(line string) { fmt.Println("  " + line) },
	})
	if err != nil {
		return err
	}
	fmt.Printf("star egress growth %.1fx, fabric %.1fx; relay tier saves %.1fx master egress at %d edges\n",
		rep.StarEgressGrowth, rep.FabricEgressGrowth, rep.EgressReductionAtMax,
		rep.EdgePoints[len(rep.EdgePoints)-1])
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
