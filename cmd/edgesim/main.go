// Command edgesim transforms a subject app, deploys it on a simulated
// edge cluster, and drives a client load scenario against both the
// original two-tier and the transformed three-tier deployments,
// reporting latency, throughput, WAN traffic, and energy.
//
// With -scale it instead runs the closed-loop scale simulator: the same
// deterministic client fleet against the flat star and the sharded
// relay fabric across a sweep of edge counts, writing the
// BENCH_scale.json scaling report.
//
// Usage:
//
//	edgesim -subject fobojet -n 50 -rps 10 -bw 500 -lat 200 -edges 4
//	edgesim -scale -clients 100000 -scaleedges 10,50,200 -scaleout BENCH_scale.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/netem"
)

func main() {
	subject := flag.String("subject", "fobojet", "subject app")
	n := flag.Int("n", 50, "number of client requests")
	rps := flag.Float64("rps", 10, "offered request rate")
	bwKbps := flag.Int("bw", 500, "WAN bandwidth (Kbps)")
	latMs := flag.Int("lat", 200, "WAN latency (ms)")
	edges := flag.Int("edges", 4, "edge replicas")
	scale := flag.Bool("scale", false, "run the star-vs-fabric scale sweep instead of the subject scenario")
	clients := flag.Int("clients", 100_000, "scale sweep: simulated clients per run")
	reqPer := flag.Int("reqper", 0, "scale sweep: requests per client (0 = simulator default)")
	scaleEdges := flag.String("scaleedges", "10,50,200", "scale sweep: comma-separated edge counts")
	scaleGroups := flag.Int("scalegroups", 0, "scale sweep: relay groups (0 = ~sqrt(edges) per point)")
	seed := flag.Int64("seed", 1, "scale sweep: deterministic seed")
	scaleOut := flag.String("scaleout", "BENCH_scale.json", "scale sweep: output report path")
	flag.Parse()

	var err error
	if *scale {
		err = runScale(*clients, *reqPer, *scaleEdges, *scaleGroups, *seed, *scaleOut)
	} else {
		err = run(*subject, *n, *rps, *bwKbps, *latMs, *edges)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim:", err)
		os.Exit(1)
	}
}

func run(subject string, n int, rps float64, bwKbps, latMs, edges int) error {
	wan := netem.LimitedWAN(bwKbps, latMs)
	fmt.Printf("subject=%s n=%d rps=%.0f WAN=%dKbps/%dms edges=%d\n\n",
		subject, n, rps, bwKbps, latMs, edges)

	cloud, err := experiments.RunCloud(subject, wan, n, rps)
	if err != nil {
		return fmt.Errorf("cloud scenario: %w", err)
	}
	edge, err := experiments.RunEdge(subject, wan, n, rps, experiments.EdgeOptions{Edges: edges})
	if err != nil {
		return fmt.Errorf("edge scenario: %w", err)
	}

	report := func(name string, r *experiments.ScenarioResult) {
		fmt.Printf("%-18s completed=%d failed=%d\n", name, r.Completed, r.Failed)
		fmt.Printf("  latency ms:     mean=%.1f p50=%.1f p95=%.1f\n",
			r.Latency.Mean(), r.Latency.Percentile(50), r.Latency.Percentile(95))
		fmt.Printf("  throughput:     %.2f req/s (makespan %v)\n", r.Throughput, r.Makespan)
		fmt.Printf("  WAN traffic:    client=%dB sync=%dB forward=%dB (%.1f B/req)\n",
			r.ClientWANBytes, r.SyncWANBytes, r.ForwardWANBytes, r.WANBytesPerRequest())
		fmt.Printf("  client energy:  %.2f J\n", r.ClientEnergyJ)
		if r.EdgeEnergyJ > 0 {
			fmt.Printf("  edge energy:    %.2f J\n", r.EdgeEnergyJ)
		}
		fmt.Println()
	}
	report("client-cloud", cloud)
	report("client-edge-cloud", edge)

	switch {
	case edge.Latency.Mean() < cloud.Latency.Mean():
		fmt.Printf("edge wins: %.1fx lower mean latency\n", cloud.Latency.Mean()/edge.Latency.Mean())
	default:
		fmt.Printf("cloud wins: %.1fx lower mean latency (WAN fast enough)\n", edge.Latency.Mean()/cloud.Latency.Mean())
	}
	return nil
}
