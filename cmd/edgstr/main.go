// Command edgstr runs the transformation pipeline on a subject
// application and reports its artifacts: the inferred Subject interface,
// per-service analysis (entry/exit points, extracted statements,
// replicated state units), and the generated edge-replica source.
//
// Usage:
//
//	edgstr -subject fobojet            # summary
//	edgstr -subject fobojet -replica   # print generated replica source
//	edgstr -list                       # list subjects
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	subject := flag.String("subject", "", "subject app to transform (see -list)")
	list := flag.Bool("list", false, "list available subject apps")
	replica := flag.Bool("replica", false, "print the generated replica source")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = one per core, 1 = sequential)")
	flag.Parse()

	if *list {
		for _, s := range workload.Subjects() {
			fmt.Printf("%-16s %d services, primary %s\n", s.Name, len(s.Services), s.PrimaryService().Route)
		}
		return
	}
	if *subject == "" {
		fmt.Fprintln(os.Stderr, "edgstr: -subject is required (use -list to see options)")
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *subject, *replica, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "edgstr:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, name string, printReplica bool, workers int) error {
	sub, err := workload.ByName(name)
	if err != nil {
		return err
	}
	fmt.Printf("transforming %s (%d routes)…\n", sub.Name, len(sub.Services))
	res, err := core.TransformSubjectTrafficContext(ctx, sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), workers)
	if err != nil {
		return err
	}

	fmt.Println("\nSubject interface (inferred from captured traffic):")
	for _, svc := range res.Services {
		fmt.Printf("  %-28s %d samples\n", svc.Name(), len(svc.Samples))
	}

	fmt.Println("\nPer-service analysis:")
	for _, svc := range res.Services {
		plan := res.Plans[svc.Name()]
		if plan == nil {
			continue
		}
		sa := plan.Analysis
		mode := "whole-handler"
		if plan.Extraction != nil {
			mode = "extracted → " + plan.Extraction.FuncName
		}
		fmt.Printf("  %-28s handler=%s %s\n", svc.Name(), sa.Handler, mode)
		fmt.Printf("      entry: stmt %d (%s)  exit: stmt %d (%s)\n",
			sa.Entry, sa.EntryVar, sa.Exit, sa.ExitVar)
		fmt.Printf("      state: tables=%v files=%v globals=%v\n",
			sa.State.Tables, sa.State.Files, sa.State.Globals)
	}

	fmt.Println("\nMerged replicated state units:")
	fmt.Printf("  tables:  %v\n", res.Units.Tables)
	fmt.Printf("  files:   %v\n", res.Units.Files)
	fmt.Printf("  globals: %v (written: %v)\n", res.Units.Globals, res.Units.GlobalWrites)
	fmt.Printf("  state_init snapshot: %d bytes\n", res.InitState.SizeBytes())

	if printReplica {
		fmt.Println("\n---- generated replica source ----")
		fmt.Println(res.ReplicaSource)
	}
	return nil
}
