// Command edgstr runs the transformation pipeline on a subject
// application and reports its artifacts: the inferred Subject interface,
// per-service analysis (entry/exit points, extracted statements,
// replicated state units), and the generated edge-replica source.
//
// With -trace and/or -metrics the run is observed end to end: the
// pipeline executes under an observability context, the result is
// deployed on a simulated edge cluster and exercised with the subject's
// regression traffic, and the command emits a JSON introspection
// snapshot (see OBSERVABILITY.md) instead of the human-readable report —
// the trace tree covers capture, per-service analysis, datalog solving,
// extraction, and deployment, and the metrics section includes the
// statesync traffic counters.
//
// Usage:
//
//	edgstr -subject fobojet            # summary
//	edgstr -subject fobojet -replica   # print generated replica source
//	edgstr -subject notes -trace -metrics | jq .   # observed quickstart run
//	edgstr -subject notes -metrics -tcp            # sync over real TCP sockets
//	edgstr -subject notes -metrics -tcp -pprof localhost:6060   # with live profiling
//	edgstr -list                       # list subjects
//
// With -tcp the observed deployment synchronizes over the supervised
// TCP transport (real loopback sockets, reconnect with backoff,
// heartbeats) instead of the virtual-time manager; -tcp-heartbeat and
// -tcp-max-retries tune it, and the snapshot gains a per-edge
// "transport" section.
//
// With -data-dir the observed deployment persists every replica's CRDT
// state under the given directory (write-ahead log + snapshots, see
// DESIGN.md §10); -fsync picks the WAL sync policy and -snapshot-every
// the compaction cadence. Running the same command twice over one
// directory exercises crash recovery: the second run's snapshot gains a
// "durability" section with recovered=true per node.
//
// With -placement the observed deployment runs the Datalog placement
// control loop (DESIGN.md §13) instead of static every-service-
// everywhere replication: edges start empty, the regression traffic is
// replayed in waves, and the controller promotes hot services to edges
// and retracts them as the traffic cools. The snapshot gains a
// "placement" section with the decision record. -placement-rules
// substitutes a custom rule program file for the built-in policy (see
// CONTRIBUTING.md for the rule language).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/httpapp"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/script"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func main() {
	subject := flag.String("subject", "", "subject app to transform (see -list)")
	list := flag.Bool("list", false, "list available subject apps")
	replica := flag.Bool("replica", false, "print the generated replica source")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = one per core, 1 = sequential)")
	trace := flag.Bool("trace", false, "observe the run and emit the JSON trace tree")
	metrics := flag.Bool("metrics", false, "observe the run and emit the JSON metrics snapshot")
	tcp := flag.Bool("tcp", false, "synchronize over the supervised TCP transport (with -trace/-metrics)")
	tcpHeartbeat := flag.Duration("tcp-heartbeat", 0, "TCP transport heartbeat period (0 = default)")
	tcpMaxRetries := flag.Int("tcp-max-retries", 0, "TCP reconnect attempts before giving up (0 = unlimited)")
	dataDir := flag.String("data-dir", "", "persist replica state under this directory (with -trace/-metrics); reuse it to recover")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval, or never")
	snapshotEvery := flag.Int("snapshot-every", 0, "compact a node's WAL after this many persisted changes (0 = never)")
	placementOn := flag.Bool("placement", false, "run the Datalog placement control loop in the observed deployment (with -trace/-metrics)")
	placementRules := flag.String("placement-rules", "", "placement rule program file (default: built-in policy)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the life of the run")
	treeWalk := flag.Bool("tree-walk", false, "run service scripts on the tree-walking reference evaluator instead of the bytecode VM")
	flag.Parse()

	if *treeWalk {
		script.SetReferenceEvalDefault(true)
	}

	if *pprofAddr != "" {
		// The profiling endpoint lives for the whole process; runs are
		// short, so profile with e.g.
		//   go tool pprof http://localhost:6060/debug/pprof/profile?seconds=5
		// while a -tcp run settles.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "edgstr: pprof:", err)
			}
		}()
	}

	if *list {
		for _, s := range workload.Subjects() {
			fmt.Printf("%-16s %d services, primary %s\n", s.Name, len(s.Services), s.PrimaryService().Route)
		}
		q := workload.Quickstart()
		fmt.Printf("%-16s %d services, primary %s (docs quickstart; excluded from the evaluation set)\n",
			q.Name, len(q.Services), q.PrimaryService().Route)
		return
	}
	if *subject == "" {
		fmt.Fprintln(os.Stderr, "edgstr: -subject is required (use -list to see options)")
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	if *trace || *metrics {
		var dur durOptions
		if *dataDir != "" {
			policy, perr := durable.ParseFsyncPolicy(*fsync)
			if perr != nil {
				fmt.Fprintln(os.Stderr, "edgstr:", perr)
				os.Exit(1)
			}
			dur = durOptions{dir: *dataDir, fsync: policy, snapshotEvery: *snapshotEvery}
		}
		err = runObserved(ctx, *subject, *workers, *trace, *metrics,
			tcpOptions{enabled: *tcp, heartbeat: *tcpHeartbeat, maxRetries: *tcpMaxRetries}, dur,
			placementOptions{enabled: *placementOn, rulesFile: *placementRules})
	} else {
		err = run(ctx, *subject, *replica, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgstr:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, name string, printReplica bool, workers int) error {
	sub, err := workload.ByName(name)
	if err != nil {
		return err
	}
	fmt.Printf("transforming %s (%d routes)…\n", sub.Name, len(sub.Services))
	res, err := core.TransformSubjectTrafficContext(ctx, sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), workers)
	if err != nil {
		return err
	}

	fmt.Println("\nSubject interface (inferred from captured traffic):")
	for _, svc := range res.Services {
		fmt.Printf("  %-28s %d samples\n", svc.Name(), len(svc.Samples))
	}

	fmt.Println("\nPer-service analysis:")
	for _, svc := range res.Services {
		plan := res.Plans[svc.Name()]
		if plan == nil {
			continue
		}
		sa := plan.Analysis
		mode := "whole-handler"
		if plan.Extraction != nil {
			mode = "extracted → " + plan.Extraction.FuncName
		}
		fmt.Printf("  %-28s handler=%s %s\n", svc.Name(), sa.Handler, mode)
		fmt.Printf("      entry: stmt %d (%s)  exit: stmt %d (%s)\n",
			sa.Entry, sa.EntryVar, sa.Exit, sa.ExitVar)
		fmt.Printf("      state: tables=%v files=%v globals=%v\n",
			sa.State.Tables, sa.State.Files, sa.State.Globals)
	}

	fmt.Println("\nMerged replicated state units:")
	fmt.Printf("  tables:  %v\n", res.Units.Tables)
	fmt.Printf("  files:   %v\n", res.Units.Files)
	fmt.Printf("  globals: %v (written: %v)\n", res.Units.Globals, res.Units.GlobalWrites)
	fmt.Printf("  state_init snapshot: %d bytes\n", res.InitState.SizeBytes())

	if printReplica {
		fmt.Println("\n---- generated replica source ----")
		fmt.Println(res.ReplicaSource)
	}
	return nil
}

// tcpOptions carries the -tcp* flags into the observed run.
type tcpOptions struct {
	enabled    bool
	heartbeat  time.Duration
	maxRetries int
}

// durOptions carries the -data-dir/-fsync/-snapshot-every flags into
// the observed run. A zero dir leaves the deployment in-memory.
type durOptions struct {
	dir           string
	fsync         durable.FsyncPolicy
	snapshotEvery int
}

// placementOptions carries the -placement flags into the observed run.
type placementOptions struct {
	enabled   bool
	rulesFile string
}

// runObserved runs the full observed lifecycle — capture, transform,
// deploy, serve the regression traffic at the edge, synchronize — and
// prints the introspection snapshot as indented JSON on stdout.
func runObserved(ctx context.Context, name string, workers int, wantTrace, wantMetrics bool, tcp tcpOptions, dur durOptions, plc placementOptions) error {
	sub, err := workload.ByName(name)
	if err != nil {
		return err
	}
	o := obs.New()
	ctx = obs.With(ctx, o)

	res, err := core.TransformSubjectTrafficContext(ctx, sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), workers)
	if err != nil {
		return err
	}

	// Deploy on the paper's standard four-Pi topology and replay the
	// regression vectors through the edge so the serving-path and
	// synchronization metrics carry real traffic.
	clock := simclock.New()
	cfg := core.DefaultDeployConfig()
	if tcp.enabled {
		cfg.Transport = core.TransportTCP
		// Real-time sync: a tight interval keeps the settle phase short.
		cfg.TCP.Interval = 50 * time.Millisecond
		cfg.TCP.Heartbeat = tcp.heartbeat
		cfg.TCP.MaxRetries = tcp.maxRetries
	}
	if dur.dir != "" {
		cfg.Durability = core.DurabilityConfig{
			Dir:           dur.dir,
			Fsync:         dur.fsync,
			SnapshotEvery: dur.snapshotEvery,
		}
	}
	if plc.enabled {
		// Thresholds sized for the regression-vector replay below: each
		// wave lands in one control window, so a few requests make a
		// service hot and a silent window cools it.
		cfg.Placement = core.PlacementConfig{
			Enabled:    true,
			Interval:   time.Second,
			Thresholds: placement.Thresholds{HotRequests: 3, ColdRequests: 1},
		}
		if plc.rulesFile != "" {
			rules, rerr := os.ReadFile(plc.rulesFile)
			if rerr != nil {
				return fmt.Errorf("placement rules: %w", rerr)
			}
			cfg.Placement.Rules = string(rules)
		}
	}
	dep, err := core.DeployContext(ctx, clock, res, cfg)
	if err != nil {
		return err
	}
	_, serveSpan := obs.StartSpan(ctx, "serve")
	var served, failed int
	handle := func(req *httpapp.Request) {
		dep.HandleAtEdge(req, func(_ *httpapp.Response, err error) {
			if err != nil {
				failed++
				return
			}
			served++
		})
	}
	if plc.enabled {
		// Replay the traffic in one wave per control round so the loop
		// sees sustained demand: the first wave forwards and promotes,
		// the following waves serve at the edges, and the silence after
		// the last wave cools the services back out (retract).
		for wave := 0; wave < 4; wave++ {
			at := clock.Now() + time.Duration(wave)*time.Second + 500*time.Millisecond
			for _, req := range sub.RegressionVectors() {
				req := req
				clock.At(at, func() { handle(req.Clone()) })
			}
		}
	} else {
		for _, req := range sub.RegressionVectors() {
			handle(req)
		}
	}
	clock.RunUntil(clock.Now() + 30*time.Second)
	serveSpan.SetAttr("served", fmt.Sprint(served))
	serveSpan.SetAttr("failed", fmt.Sprint(failed))
	serveSpan.End()
	_, syncSpan := obs.StartSpan(ctx, "settle_sync")
	settleBudget := 120 * time.Second // virtual time
	if tcp.enabled {
		settleBudget = 10 * time.Second // wall clock
	}
	dep.SettleSync(settleBudget)
	syncSpan.SetAttr("converged", fmt.Sprint(dep.Converged()))
	syncSpan.End()
	dep.Stop()

	observation := core.Observe(dep)
	if snap := observation.Observability; snap != nil {
		if !wantTrace {
			snap.Trace = nil
		}
		if !wantMetrics {
			snap.Metrics = nil
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(observation)
}
