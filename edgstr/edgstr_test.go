package edgstr_test

import (
	"context"
	"testing"
	"time"

	"repro/edgstr"
)

const demoSrc = `
var visits = 0

func init() any {
	db.exec("CREATE TABLE notes (id INT PRIMARY KEY, text TEXT)")
	return nil
}

func addNote(req any, res any) any {
	tv1 := req.json()
	visits = visits + 1
	db.exec("INSERT INTO notes (id, text) VALUES (?, ?)", visits, tv1["text"])
	tv2 := map[string]any{"id": visits}
	res.send(tv2)
	return nil
}

func listNotes(req any, res any) any {
	rows := db.query("SELECT * FROM notes ORDER BY id")
	res.send(rows)
	return nil
}`

var demoRoutes = []edgstr.Route{
	{Method: "POST", Path: "/notes", Handler: "addNote"},
	{Method: "GET", Path: "/notes", Handler: "listNotes"},
}

func demoRequests() []*edgstr.Request {
	var reqs []*edgstr.Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs,
			&edgstr.Request{Method: "POST", Path: "/notes", Body: []byte(`{"text": "note"}`)},
			&edgstr.Request{Method: "GET", Path: "/notes"},
		)
	}
	return reqs
}

// TestPublicAPIEndToEnd walks the documented three-step flow: capture,
// transform, deploy.
func TestPublicAPIEndToEnd(t *testing.T) {
	app, err := edgstr.NewApp("demo", demoSrc, demoRoutes)
	if err != nil {
		t.Fatal(err)
	}
	records, err := edgstr.CaptureTraffic(app, demoRequests())
	if err != nil {
		t.Fatal(err)
	}
	services := edgstr.InferSubject(records)
	if len(services) != 2 {
		t.Fatalf("services = %v", services)
	}

	res, err := edgstr.Transform(edgstr.Input{
		Name: "demo", Source: demoSrc, Routes: demoRoutes, Records: records,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReplicatedServiceNames()) != 2 {
		t.Fatalf("replicated = %v", res.ReplicatedServiceNames())
	}

	clock := edgstr.NewClock()
	cfg := edgstr.DefaultDeployConfig()
	cfg.WAN = edgstr.LimitedWAN(500, 300)
	dep, err := edgstr.Deploy(clock, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotBody := ""
	dep.HandleAtEdge(&edgstr.Request{Method: "POST", Path: "/notes", Body: []byte(`{"text": "hi"}`)},
		func(resp *edgstr.Response, err error) {
			if err != nil {
				t.Errorf("edge: %v", err)
				return
			}
			gotBody = string(resp.Body)
		})
	clock.RunUntil(2 * time.Second)
	if gotBody != `{"id":1}` {
		t.Fatalf("body = %q", gotBody)
	}
	dep.SettleSync(60 * time.Second)
	dep.Stop()
	if !dep.Converged() {
		t.Fatal("deployment did not converge")
	}
	n, err := dep.Cloud.App.DB().RowCount("notes")
	if err != nil || n != 1 {
		t.Fatalf("cloud rows = %d, %v", n, err)
	}
}

// TestObservedFacade walks the observed variant of the documented flow:
// attach an Obs, run transform + deploy through the Context entry
// points, and read back the introspection snapshot with Observe.
func TestObservedFacade(t *testing.T) {
	o := edgstr.NewObs()
	ctx := edgstr.WithObs(context.Background(), o)
	res, err := edgstr.TransformWithTrafficContext(ctx, "demo", demoSrc, demoRoutes, demoRequests(), 0)
	if err != nil {
		t.Fatal(err)
	}
	clock := edgstr.NewClock()
	dep, err := edgstr.DeployContext(ctx, clock, res, edgstr.DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range demoRequests() {
		dep.HandleAtEdge(req, nil)
	}
	clock.RunUntil(10 * time.Second)
	dep.SettleSync(60 * time.Second)
	dep.Stop()

	ob := edgstr.Observe(dep)
	if ob.Observability == nil {
		t.Fatal("observability snapshot missing despite WithObs")
	}
	if len(ob.Observability.Trace) == 0 {
		t.Fatal("trace is empty")
	}
	var sync edgstr.SyncStats = ob.StateSync
	if sync.TotalBytes() <= 0 || sync.Messages <= 0 {
		t.Fatalf("statesync stats not surfaced: %+v", sync)
	}
	if len(ob.Edges) == 0 {
		t.Fatal("no edge observations")
	}
}

func TestTransformWithTrafficConvenience(t *testing.T) {
	res, err := edgstr.TransformWithTraffic("demo", demoSrc, demoRoutes, demoRequests())
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaSource == "" || res.InitState == nil {
		t.Fatal("incomplete result")
	}
}

func TestPresetsSane(t *testing.T) {
	if edgstr.CloudSpec.OpsPerSec <= edgstr.RPi4Spec.OpsPerSec {
		t.Fatal("cloud must outpace edge devices")
	}
	if edgstr.CrossContinent.RTT() <= edgstr.SameContinent.RTT() {
		t.Fatal("continental RTTs inverted")
	}
	if edgstr.LAN.Latency >= edgstr.FastWAN.Latency {
		t.Fatal("LAN must be closer than WAN")
	}
}
