// Package edgstr is the public API of the EdgStr reproduction: it
// transforms two-tier client-cloud applications into three-tier
// client-edge-cloud deployments with CRDT-synchronized replicas.
//
// Typical use:
//
//	// 1. Describe the cloud service (script source + routes) and
//	//    capture representative client traffic.
//	app, _ := edgstr.NewApp("myapp", source, routes)
//	records, _ := edgstr.CaptureTraffic(app, sampleRequests)
//
//	// 2. Transform: infer the Subject interface, analyze each service
//	//    under state isolation and fuzzing, extract replicable
//	//    functions, and generate edge-replica source.
//	result, _ := edgstr.Transform(edgstr.Input{
//	    Name: "myapp", Source: source, Routes: routes, Records: records,
//	})
//
//	// 3. Deploy on a simulated edge cluster and serve clients at the
//	//    edge; state synchronizes with the cloud in the background.
//	clock := edgstr.NewClock()
//	dep, _ := edgstr.Deploy(clock, result, edgstr.DefaultDeployConfig())
//	dep.HandleAtEdge(req, func(resp *edgstr.Response, err error) { … })
//
// The heavy lifting lives in the internal packages; this package
// re-exports the surface a downstream user needs.
package edgstr

import (
	"context"
	"time"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/httpapp"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/statesync"
)

// Core transformation types.
type (
	// Input describes the application to transform.
	Input = core.Input
	// Result is the transformation artifact set.
	Result = core.Result
	// ServicePlan is the per-service transformation outcome.
	ServicePlan = core.ServicePlan
	// Deployment is a running three-tier system.
	Deployment = core.Deployment
	// DeployConfig describes the deployment topology.
	DeployConfig = core.DeployConfig
	// ReadsConfig tunes the reader/writer invocation scheduler
	// (DeployConfig.Reads).
	ReadsConfig = core.ReadsConfig
	// EdgeReplica is one deployed edge node.
	EdgeReplica = core.EdgeReplica
	// Transport selects the synchronization runtime (virtual-time
	// manager or real TCP sockets).
	Transport = core.Transport
)

// Synchronization transports.
const (
	// TransportVirtual synchronizes on the deployment's virtual clock
	// over netem-shaped links (the default, used by the evaluation).
	TransportVirtual = core.TransportVirtual
	// TransportTCP synchronizes over real loopback TCP sockets with
	// supervised reconnect, heartbeats, and dead-peer detection.
	TransportTCP = core.TransportTCP
)

// Application-model types.
type (
	// App is a service instance (cloud original or edge replica).
	App = httpapp.App
	// Route binds an HTTP method and path pattern to a handler.
	Route = httpapp.Route
	// Request is an in-process HTTP request.
	Request = httpapp.Request
	// Response is an in-process HTTP response.
	Response = httpapp.Response
	// Record is one captured request/response exchange.
	Record = capture.Record
	// Service is one inferred remote service of the Subject interface.
	Service = capture.Service
	// StateUnits lists the replicated state a service touches.
	StateUnits = analysis.StateUnits
)

// Infrastructure types.
type (
	// Clock is the discrete-event virtual clock simulations run on.
	Clock = simclock.Clock
	// NetConfig shapes a network link (bandwidth, latency, jitter,
	// loss).
	NetConfig = netem.Config
	// DeviceSpec models a device's compute speed and power draw.
	DeviceSpec = cluster.DeviceSpec
)

// Observability types. See OBSERVABILITY.md for the span taxonomy and
// the metric name registry.
type (
	// Obs bundles a trace recorder and a metrics registry; attach one
	// to a context with WithObs to instrument the pipeline.
	Obs = obs.Obs
	// Snapshot is a JSON-marshalable trace tree + metrics dump.
	Snapshot = obs.Snapshot
	// Observation is the introspection snapshot of a running
	// deployment (Observe).
	Observation = core.Observation
	// EdgeObservation is one edge node's serving record.
	EdgeObservation = core.EdgeObservation
	// SyncStats is the replica synchronization runtime's traffic
	// accounting: delta bytes by direction, messages, acknowledged
	// round-trips, and apply errors.
	SyncStats = statesync.Stats
	// TransportObservation is one edge's TCP connection supervision
	// record (TransportTCP deployments only).
	TransportObservation = core.TransportObservation
)

// TCP transport configuration types (TransportTCP deployments). See
// DESIGN.md §9 for the fault-tolerance model.
type (
	// TCPConfig tunes the supervised TCP transport: sync interval,
	// dial/read timeouts, heartbeat period, reconnect backoff, and the
	// retry budget.
	TCPConfig = statesync.TCPConfig
	// BackoffConfig is the exponential reconnect backoff schedule.
	BackoffConfig = statesync.BackoffConfig
	// TCPEdgeStatus is a snapshot of one edge link's supervision state.
	TCPEdgeStatus = statesync.EdgeStatus
	// TCPStats counts TCP transport traffic and lifecycle events.
	TCPStats = statesync.TCPStats
)

// DefaultTCPConfig returns the TCP transport's default fault-tolerance
// settings at the given synchronization interval.
func DefaultTCPConfig(interval time.Duration) TCPConfig {
	return statesync.DefaultTCPConfig(interval)
}

// Durability types (DeployConfig.Durability). See DESIGN.md §10 for the
// durability model: per-node write-ahead log, snapshot compaction, and
// crash recovery with delta-only resync.
type (
	// DurabilityConfig persists every replica's CRDT state under a data
	// directory and recovers it on the next deployment over the same
	// directory. The zero value keeps the deployment in-memory only.
	DurabilityConfig = core.DurabilityConfig
	// FsyncPolicy selects the WAL durability/throughput trade-off.
	FsyncPolicy = durable.FsyncPolicy
	// DurabilityObservation is one node's persistence record in the
	// introspection snapshot (recovery outcome plus WAL I/O counters).
	DurabilityObservation = core.DurabilityObservation
)

// WAL fsync policies.
const (
	// FsyncAlways syncs after every append: a change is on disk before
	// it is acknowledged (the default).
	FsyncAlways = durable.FsyncAlways
	// FsyncInterval syncs lazily on a time interval, bounding the loss
	// window instead of eliminating it.
	FsyncInterval = durable.FsyncInterval
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever = durable.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	return durable.ParseFsyncPolicy(s)
}

// NewObs returns an enabled observability bundle. All instrumentation
// hooks are no-ops until one is attached to the pipeline's context, so
// the instrumented hot paths cost nothing by default.
func NewObs() *Obs { return obs.New() }

// WithObs attaches the bundle to a context; pass the context to
// TransformContext, CaptureTraffic (via TransformWithTrafficContext),
// and DeployContext to collect spans and metrics.
func WithObs(ctx context.Context, o *Obs) context.Context { return obs.With(ctx, o) }

// Observe captures an introspection snapshot of a running deployment:
// trace + metrics (when deployed under an obs context), the
// synchronization traffic statistics, and per-edge serving counters.
func Observe(dep *Deployment) Observation { return core.Observe(dep) }

// NewApp builds a service instance from script source and routes.
func NewApp(name, source string, routes []Route) (*App, error) {
	return httpapp.New(name, source, routes)
}

// NewClock returns a virtual clock starting at time zero.
func NewClock() *Clock { return simclock.New() }

// CaptureTraffic drives requests through an app while recording the
// exchanges — the attach step of the pipeline.
func CaptureTraffic(app *App, reqs []*Request) ([]Record, error) {
	return core.CaptureTraffic(app, reqs)
}

// InferSubject reconstructs the Subject interface from captured traffic
// (Eq. 1 of the paper).
func InferSubject(records []Record) []Service {
	return capture.InferSubject(records)
}

// Transform runs the full EdgStr pipeline.
func Transform(in Input) (*Result, error) { return core.Transform(in) }

// TransformContext runs the full EdgStr pipeline with cancellation and
// observability: spans and metrics are recorded when the context
// carries an Obs (WithObs).
func TransformContext(ctx context.Context, in Input) (*Result, error) {
	return core.TransformContext(ctx, in)
}

// TransformWithTraffic builds the app, captures the given requests, and
// transforms in one step.
func TransformWithTraffic(name, source string, routes []Route, reqs []*Request) (*Result, error) {
	return core.TransformSubjectTraffic(name, source, routes, reqs)
}

// TransformWithTrafficContext is TransformWithTraffic with
// cancellation, observability, and an analysis worker-pool bound
// (0 = one per core, 1 = sequential).
func TransformWithTrafficContext(ctx context.Context, name, source string, routes []Route, reqs []*Request, workers int) (*Result, error) {
	return core.TransformSubjectTrafficContext(ctx, name, source, routes, reqs, workers)
}

// Deploy instantiates a transformation result as a running three-tier
// system on the given virtual clock.
func Deploy(clock *Clock, res *Result, cfg DeployConfig) (*Deployment, error) {
	return core.Deploy(clock, res, cfg)
}

// DeployContext is Deploy with observability: under a WithObs context
// the deployment opens a "deploy" span and records statesync.* and
// cluster.* metrics for its lifetime.
func DeployContext(ctx context.Context, clock *Clock, res *Result, cfg DeployConfig) (*Deployment, error) {
	return core.DeployContext(ctx, clock, res, cfg)
}

// DefaultDeployConfig returns the evaluation's standard topology: a
// cloud server plus the paper's four-Pi edge cluster.
func DefaultDeployConfig() DeployConfig { return core.DefaultDeployConfig() }

// Device presets matching the paper's hardware.
var (
	CloudSpec  = cluster.CloudSpec
	RPi3Spec   = cluster.RPi3Spec
	RPi4Spec   = cluster.RPi4Spec
	MobileSpec = cluster.MobileSpec
)

// Network presets.
var (
	LAN            = netem.LAN
	FastWAN        = netem.FastWAN
	SameContinent  = netem.SameContinent
	CrossContinent = netem.CrossContinent
)

// LimitedWAN returns a point in the paper's limited-cloud-network space
// (bandwidth in Kbps, latency in ms).
func LimitedWAN(bandwidthKbps, latencyMs int) NetConfig {
	return netem.LimitedWAN(bandwidthKbps, latencyMs)
}
