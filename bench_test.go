// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§IV) as testing.B benchmarks. Each
// benchmark runs the corresponding experiment end to end on the
// simulated testbed and reports the figure's headline metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the same
// series the paper plots. Absolute numbers come from the simulator; the
// shapes (who wins, by what factor, where crossovers fall) are asserted
// inside each experiment.
package repro

import (
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/experiments"
	"repro/internal/httpapp"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// BenchmarkMotivationRTT regenerates the §II-A cross-continent latency
// observation.
func BenchmarkMotivationRTT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MotivationRTT(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II (subject services, WAN traffic,
// latency).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	var loKB, leKB float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		loKB, leKB = rows[0].LoMS, rows[0].LeMS
	}
	b.ReportMetric(loKB, "fobojet_Lo_ms")
	b.ReportMetric(leKB, "fobojet_Le_ms")
}

// BenchmarkFig6bRegression regenerates the cloud-vs-edge throughput
// regression, whose RPi-4/RPi-3 slope ratio recovers the device speed
// ratio (paper: 1.71 measured, 1.8 benchmark).
func BenchmarkFig6bRegression(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.SpeedRatio
	}
	b.ReportMetric(ratio, "rpi4/rpi3_slope_ratio")
}

// BenchmarkFig7Throughput regenerates the WAN-speed throughput sweep for
// the motivating subject, reporting the crossover index.
func BenchmarkFig7Throughput(b *testing.B) {
	b.ReportAllocs()
	var crossover float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7Subject("fobojet")
		if err != nil {
			b.Fatal(err)
		}
		crossover = float64(r.CrossoverIdx)
	}
	b.ReportMetric(crossover, "crossover_idx")
}

// BenchmarkFig7AllSubjects regenerates the full Figure 7 grid including
// the Data Deluge indices (Fig 7-g).
func BenchmarkFig7AllSubjects(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Energy regenerates the mobile-energy comparison (200
// executions per subject over the limited network).
func BenchmarkFig8Energy(b *testing.B) {
	b.ReportAllocs()
	var saved float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		saved = 0
		for _, r := range rows {
			saved += r.SavedJ
		}
	}
	b.ReportMetric(saved, "total_saved_J")
}

// BenchmarkFig9Latency regenerates the latency-vs-RPS grid for 1-4
// active replicas.
func BenchmarkFig9Latency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig9Left(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Elasticity regenerates the elastic power-down comparison
// (paper: 12.96% energy saving).
func BenchmarkFig9Elasticity(b *testing.B) {
	b.ReportAllocs()
	var saving float64
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig9Right()
		if err != nil {
			b.Fatal(err)
		}
		saving = res.SavingPct
	}
	b.ReportMetric(saving, "energy_saving_pct")
}

// BenchmarkFig10aSyncTraffic regenerates the per-request WAN traffic
// comparison against cross-ISA full-state synchronization.
func BenchmarkFig10aSyncTraffic(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig10a()
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].CrossISAKB / rows[0].EdgStrKB
	}
	b.ReportMetric(ratio, "fobojet_crossISA/edgstr")
}

// BenchmarkFig10bProxies regenerates the caching/batching/EdgStr latency
// box statistics.
func BenchmarkFig10bProxies(b *testing.B) {
	b.ReportAllocs()
	var median float64
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig10b()
		if err != nil {
			b.Fatal(err)
		}
		median = res.EdgStr.Median
	}
	b.ReportMetric(median, "edgstr_median_ms")
}

// BenchmarkAnalysisAccuracy regenerates the RQ3 state-isolation
// effectiveness measurement.
func BenchmarkAnalysisAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AnalysisAccuracy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDeltaVsFullSync quantifies CRDT delta sync against
// full-state shipping.
func BenchmarkAblationDeltaVsFullSync(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDeltaVsFullSync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLBPolicy compares least-connections against
// round-robin balancing.
func BenchmarkAblationLBPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLBPolicy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSyncInterval sweeps the background sync period
// against staleness and WAN message cost.
func BenchmarkAblationSyncInterval(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSyncInterval(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformPipeline measures the full EdgStr pipeline — traffic
// capture, normalization, per-service dynamic analysis with fuzzing,
// extraction, and replica generation — on the motivating subject.
func BenchmarkTransformPipeline(b *testing.B) {
	sub, err := workload.ByName("fobojet")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.TransformSubjectTraffic(sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformPipelineObserved measures the same pipeline under a
// live observability context (spans + metrics recorded throughout).
// Compare against BenchmarkTransformPipeline for the enabled-path cost;
// the disabled-path cost is asserted separately by BenchmarkObsOverhead
// in internal/obs.
func BenchmarkTransformPipelineObserved(b *testing.B) {
	sub, err := workload.ByName("fobojet")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := obs.With(context.Background(), obs.New())
		if _, err := core.TransformSubjectTrafficContext(ctx, sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployAndServe measures deployment instantiation plus one
// hundred edge-served requests on virtual time.
func BenchmarkDeployAndServe(b *testing.B) {
	sub, err := workload.ByName("sensor-hub")
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.TransformSubjectTraffic(sub.Name, sub.Source, sub.Routes(), sub.RegressionVectors())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := simclock.New()
		dep, err := core.Deploy(clock, res, core.DefaultDeployConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			dep.HandleAtEdge(sub.SampleRequest(sub.Primary, j, 7), nil)
		}
		clock.RunUntil(30 * time.Second)
		dep.Stop()
	}
}

// BenchmarkAnalyzeAppParallel compares per-service dynamic analysis on a
// single worker against the per-core worker pool, on the multi-service
// motivating subject. On a multi-core runner the parallel sub-benchmark
// should approach a len(services)-way speedup.
func BenchmarkAnalyzeAppParallel(b *testing.B) {
	sub, err := workload.ByName("fobojet")
	if err != nil {
		b.Fatal(err)
	}
	app, err := httpapp.New(sub.Name, sub.Source, sub.Routes())
	if err != nil {
		b.Fatal(err)
	}
	records, err := core.CaptureTraffic(app, sub.RegressionVectors())
	if err != nil {
		b.Fatal(err)
	}
	services := capture.InferSubject(records)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fresh, err := httpapp.New(sub.Name, sub.Source, sub.Routes())
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := analysis.NewAnalyzer(fresh).AnalyzeAppContext(
					context.Background(), services, analysis.Parallelism{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchJoinDB builds the transitive-closure workload both Datalog join
// paths are measured on: a layered dependence graph with the path
// fan-in of a real STMT-T-DEP closure, so duplicate derivations — the
// cost the indexed path avoids — dominate.
func benchJoinDB(b *testing.B, reference bool) *datalog.DB {
	b.Helper()
	db := datalog.NewDB()
	db.SetReferenceJoin(reference)
	const layers, width = 7, 5
	node := func(l, w int) string { return "s" + strconv.Itoa(l*width+w) }
	for l := 0; l+1 < layers; l++ {
		for x := 0; x < width; x++ {
			for y := 0; y < width; y++ {
				if _, err := db.AddFact("dep", node(l+1, y), node(l, x)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for _, r := range []datalog.Rule{
		datalog.NewRule(
			datalog.NewAtom("tdep", datalog.V("X"), datalog.V("Y")),
			datalog.NewAtom("dep", datalog.V("X"), datalog.V("Y"))),
		datalog.NewRule(
			datalog.NewAtom("tdep", datalog.V("X"), datalog.V("Z")),
			datalog.NewAtom("dep", datalog.V("X"), datalog.V("Y")),
			datalog.NewAtom("tdep", datalog.V("Y"), datalog.V("Z"))),
	} {
		if err := db.AddRule(r); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkDatalogJoin measures the semi-naive fixpoint on a layered
// transitive closure, naive nested-loop join against the indexed
// compiled-plan join. Only Run is timed; DB construction happens with
// the timer stopped.
func BenchmarkDatalogJoin(b *testing.B) {
	for _, bc := range []struct {
		name      string
		reference bool
	}{{"naive", true}, {"indexed", false}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchJoinDB(b, bc.reference)
				b.StartTimer()
				if err := db.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
